"""Multi-sample generation analysis: pass@k (Figure 8, §4.2).

A problem is considered passed at ``k`` when any of its first ``k`` samples
passes the unit test (Kulal et al., 2019).  The curves report the number of
passed problems over the original dataset plus the performance normalised
to the single-sample result.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.benchmark import ModelEvaluation

__all__ = ["PassAtKCurve", "pass_at_k", "pass_at_k_curves"]


@dataclass(frozen=True)
class PassAtKCurve:
    """pass@k values of one model."""

    model_name: str
    ks: tuple[int, ...]
    passed: tuple[int, ...]

    def normalized(self) -> tuple[float, ...]:
        """Performance normalised to pass@1 (Figure 8, right panel)."""

        base = self.passed[0] if self.passed and self.passed[0] > 0 else 1
        return tuple(value / base for value in self.passed)


def pass_at_k(evaluation: ModelEvaluation, k: int, variant: str = "original") -> int:
    """Number of problems with at least one passing sample among the first k."""

    outcomes: dict[str, bool] = defaultdict(bool)
    for record in evaluation.records:
        if record.variant != variant or record.sample_index >= k:
            continue
        if record.scores.unit_test >= 1.0:
            outcomes[record.base_id] = True
        else:
            outcomes.setdefault(record.base_id, False)
    return sum(1 for passed in outcomes.values() if passed)


def pass_at_k_curves(
    evaluations: Sequence[ModelEvaluation],
    ks: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 20),
    max_k_per_model: dict[str, int] | None = None,
    variant: str = "original",
) -> list[PassAtKCurve]:
    """Compute pass@k curves for several models.

    ``max_k_per_model`` truncates a model's curve early — the paper only ran
    GPT-4 for 6 samples because of API rate limits.
    """

    max_k_per_model = max_k_per_model or {}
    curves = []
    for evaluation in evaluations:
        limit = max_k_per_model.get(evaluation.model_name)
        model_ks = tuple(k for k in ks if limit is None or k <= limit)
        passed = tuple(pass_at_k(evaluation, k, variant=variant) for k in model_ks)
        curves.append(PassAtKCurve(model_name=evaluation.model_name, ks=model_ks, passed=passed))
    return curves
