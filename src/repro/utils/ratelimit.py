"""A deterministic token-bucket rate limiter.

Remote model endpoints meter requests per second; the paper's ray-based
query module existed precisely to saturate those limits without tripping
them.  :class:`TokenBucket` models that contract explicitly: a bucket of
``burst`` tokens refilled at ``rate`` tokens per second, one token per
request.

The bucket runs against either clock:

* **virtual** (the default) — time is advanced arithmetically instead of
  sleeping, so a simulated "remote" run fast-forwards through its waits
  and finishes in milliseconds while still accounting exactly how long a
  real endpoint would have throttled it (``waited_seconds``).  This is
  what keeps the async executor deterministic and test-fast.
* **wall clock** — :meth:`acquire_async` actually sleeps, for use against
  real rate-limited endpoints.

Acquisition order is the caller's await order, so the same request
sequence always observes the same waits regardless of clock mode.
"""

from __future__ import annotations

import asyncio
import threading
import time

__all__ = ["TokenBucket"]


class TokenBucket:
    """Token-bucket limiter: ``rate`` requests/second with ``burst`` capacity."""

    def __init__(self, rate: float, burst: int = 1, virtual_clock: bool = True) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.virtual_clock = virtual_clock
        self._tokens = float(burst)
        self._clock = 0.0  # virtual seconds since construction
        self._last_refill = 0.0
        self._wall_start = time.monotonic()
        # Acquisition is a read-modify-write of the token/clock state; the
        # lock keeps accounting exact if two loops ever share one bucket.
        self._mutex = threading.Lock()
        #: Total throttle time accounted so far (virtual) or slept (wall).
        self.waited_seconds = 0.0
        self.acquired = 0

    # -- clock -------------------------------------------------------------
    def _now(self) -> float:
        if self.virtual_clock:
            return self._clock
        return time.monotonic() - self._wall_start

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)
        self._last_refill = now

    # -- acquisition -------------------------------------------------------
    def try_acquire(self) -> float:
        """Take one token, returning how long the caller must wait for it.

        A return of ``0.0`` means the request may go immediately.  In
        virtual-clock mode the wait is accounted (the clock jumps forward);
        the caller never sleeps.
        """

        with self._mutex:
            now = max(self._now(), self._last_refill)
            self._refill(now)
            self.acquired += 1
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            wait = (1.0 - self._tokens) / self.rate
            if self.virtual_clock:
                # Fast-forward: the token exists at now + wait; spend it there.
                self._clock = now + wait
                self._refill(self._clock)
                self._tokens -= 1.0
            else:
                self._tokens -= 1.0  # token is borrowed; the caller sleeps it off
            self.waited_seconds += wait
            return wait

    def acquire(self) -> float:
        """Blocking acquire: sleeps on the wall clock, fast-forwards on the
        virtual one.  Returns the wait that was (or would have been) paid.

        Wall-clock pacing under concurrent acquirers works by borrowing:
        :meth:`try_acquire` hands each caller a token immediately (the
        balance goes negative) together with the monotonic-clock wait
        until that token is actually refilled, and the caller sleeps it
        off outside the lock.  N concurrent acquirers therefore receive
        strictly increasing waits and dispatch ~``1/rate`` apart, without
        ever serialising inside the bucket.
        """

        wait = self.try_acquire()
        if wait > 0.0 and not self.virtual_clock:
            time.sleep(wait)
        return wait

    async def acquire_async(self) -> float:
        """Async acquire: sleeps on the wall clock, fast-forwards on the
        virtual one.  Returns the wait that was (or would have been) paid."""

        wait = self.try_acquire()
        if wait > 0.0 and not self.virtual_clock:
            await asyncio.sleep(wait)
        return wait
