"""Deployment problem templates (Table 2 column "deployment")."""

from __future__ import annotations

from repro.dataset.catalog.common import (
    CPU_REQUESTS,
    DB_IMAGES,
    HTTP_PORTS,
    MEMORY_REQUESTS,
    WEB_IMAGES,
    ProblemDraft,
    pick_app,
    pick_source,
)
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _web_deployment(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    replicas = rng.choice([2, 3, 4, 5])
    image = rng.choice(WEB_IMAGES)
    port = rng.choice(HTTP_PORTS)
    name = f"{app}-deployment"
    question = (
        f"Write a YAML for a Deployment named \"{name}\" in the {namespace} namespace with "
        f"{replicas} replicas of the {image} image. Pods must be labeled app: {app} and the "
        f"container must expose port {port}."
    )
    reference = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: {replicas}
  selector:
    matchLabels:
      app: {app}
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: {app}  # *
        image: {image}
        ports:
        - containerPort: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Deployment", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.replicas}", expected=str(replicas), name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.template.spec.containers[0].image}", expected=image, name=name, namespace=namespace),
        S.AssertPodCount(selector={"app": app}, min_count=replicas, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"deployment-web-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Deployment",
    )


def _mysql_deployment(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(DB_IMAGES)
    password = rng.choice(["password", "changeme", "root-secret"])
    port = {"redis:7": 6379, "mysql:8.0": 3306, "postgres:16": 5432, "mongo:7": 27017}[image]
    env_name = {
        "redis:7": "REDIS_PASSWORD",
        "mysql:8.0": "MYSQL_ROOT_PASSWORD",
        "postgres:16": "POSTGRES_PASSWORD",
        "mongo:7": "MONGO_INITDB_ROOT_PASSWORD",
    }[image]
    name = f"{app}-db"
    question = (
        f"Please write a YAML file that defines a Deployment named \"{name}\" in the {namespace} "
        f"namespace running a single {image} instance on port {port}, with the environment variable "
        f"{env_name}={password}. The pod label should be app: {name}."
    )
    reference = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: 1
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: db  # *
        image: {image}
        env:
        - name: {env_name}
          value: "{password}"
        ports:
        - containerPort: {port}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Deployment", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.template.spec.containers[0].env[0].name}", expected=env_name, name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.template.spec.containers[0].ports[0].containerPort}", expected=str(port), name=name, namespace=namespace),
        S.AssertPodCount(selector={"app": name}, min_count=1, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"deployment-database-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Deployment",
        extra_difficulty=0.1,
    )


def _deployment_with_resources(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    cpu = rng.choice(CPU_REQUESTS)
    memory = rng.choice(MEMORY_REQUESTS)
    replicas = rng.choice([2, 3])
    name = f"{app}-api"
    question = (
        f"Create a Deployment named \"{name}\" in namespace {namespace} with {replicas} replicas of "
        f"python:3.11-slim labeled app: {name}. Each container must request {cpu} CPU and {memory} "
        f"of memory, and use the same {cpu} and {memory} values as its limits."
    )
    reference = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: {replicas}
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: api  # *
        image: python:3.11-slim
        resources:
          requests:
            cpu: {cpu}
            memory: {memory}
          limits:
            cpu: {cpu}
            memory: {memory}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Deployment", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.template.spec.containers[0].resources.requests.cpu}", expected=cpu, name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.template.spec.containers[0].resources.limits.memory}", expected=memory, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"deployment-resources-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Deployment",
    )


def _fix_selector_mismatch(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-frontend"
    image = rng.choice(WEB_IMAGES)
    context = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: 2
  selector:
    matchLabels:
      app: {app}-old
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: web
        image: {image}
"""
    question = (
        f"Given the following Deployment, applying it fails with: The Deployment \"{name}\" is "
        f"invalid: spec.template.metadata.labels: Invalid value: map[string]string{{\"app\":\"{app}\"}}: "
        f"`selector` does not match template `labels`. Please fix the YAML so the selector matches the "
        f"pod template labels (keep the label app: {app}) and provide the entire YAML."
    )
    reference = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: 2
  selector:
    matchLabels:
      app: {app}
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: web  # *
        image: {image}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Deployment", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.selector.matchLabels.app}", expected=app, name=name, namespace=namespace),
        S.AssertPodCount(selector={"app": app}, min_count=2, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"deployment-fix-selector-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source="stackoverflow",
        primary_kind="Deployment",
    )


def _rolling_update_deployment(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    replicas = rng.choice([3, 4, 5])
    surge = rng.choice([1, 2])
    name = f"{app}-rolling"
    question = (
        f"Write a Deployment YAML named \"{name}\" for namespace {namespace}: {replicas} replicas of "
        f"nginx:1.25 labeled app: {name}, using a RollingUpdate strategy with maxSurge {surge} and "
        f"maxUnavailable 0."
    )
    reference = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: {replicas}
  strategy:
    type: RollingUpdate
    rollingUpdate:
      maxSurge: {surge}
      maxUnavailable: 0
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: web  # *
        image: nginx:1.25
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Deployment", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.strategy.type}", expected="RollingUpdate", name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.strategy.rollingUpdate.maxSurge}", expected=str(surge), name=name, namespace=namespace),
        S.AssertJsonPath("Deployment", "{.spec.strategy.rollingUpdate.maxUnavailable}", expected="0", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"deployment-rolling-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Deployment",
    )


_TEMPLATES = [
    _web_deployment,
    _mysql_deployment,
    _deployment_with_resources,
    _fix_selector_mismatch,
    _rolling_update_deployment,
]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` deployment problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("deployment", index), index))
    return drafts
