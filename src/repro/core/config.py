"""Benchmark configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.schema import Variant
from repro.pipeline.executors import EXECUTOR_NAMES

__all__ = ["BenchmarkConfig"]


@dataclass(frozen=True)
class BenchmarkConfig:
    """Knobs controlling a benchmark run.

    Attributes
    ----------
    seed:
        Seed forwarded to the simulated models; the dataset has its own seed.
    shots:
        Number of few-shot examples prepended to every prompt (0-3, §4.3).
    samples:
        Samples generated per problem (1 for the zero-shot benchmark,
        more for the multi-sample experiment of §4.2).
    variants:
        Which question variants to evaluate; defaults to all three.
    run_unit_tests:
        Whether to execute the functional unit tests (True for the real
        benchmark; False simulates the cheap text-only scoring of §4.4).
    calibrate:
        Whether to rescale the simulated models so their original-set pass
        counts land on the paper's Table 5 values (recommended).
    max_workers:
        Parallelism of the query module and of the scoring executor
        (1 = sequential; results are deterministic either way).
    executor:
        Backend the pipeline's score stage fans work out over:
        ``"serial"``, ``"thread"`` (a ``max_workers`` thread pool) or
        ``"cluster"`` (the in-process master/worker evaluation-cluster
        runtime).  Scores are identical across backends.
    """

    seed: int = 7
    shots: int = 0
    samples: int = 1
    variants: tuple[Variant, ...] = (Variant.ORIGINAL, Variant.SIMPLIFIED, Variant.TRANSLATED)
    run_unit_tests: bool = True
    calibrate: bool = True
    max_workers: int = 1
    executor: str = "serial"

    def __post_init__(self) -> None:
        if self.shots < 0 or self.shots > 3:
            raise ValueError("shots must be between 0 and 3")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if not self.variants:
            raise ValueError("at least one variant must be selected")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(f"executor must be one of {EXECUTOR_NAMES}")
