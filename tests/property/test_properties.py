"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

import yaml
from hypothesis import given, settings, strategies as st

from repro.kubesim.jsonpath import render_jsonpath
from repro.mlkit.bleu import bleu_score, sentence_bleu
from repro.postprocess import extract_yaml
from repro.scoring.yaml_aware import key_value_exact_match, key_value_wildcard_match
from repro.yamlkit.diffing import scaled_edit_similarity
from repro.yamlkit.labels import parse_labeled_yaml, strip_labels
from repro.yamlkit.normalize import documents_equal
from repro.yamlkit.parsing import dump_document, load_document

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_keys = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
_scalars = st.one_of(
    st.integers(min_value=-1000, max_value=100000),
    st.booleans(),
    st.text(alphabet=string.ascii_letters + string.digits + "-./", min_size=1, max_size=12),
)

_documents = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3),
        st.dictionaries(_keys, children, min_size=1, max_size=4),
    ),
    max_leaves=12,
).filter(lambda doc: isinstance(doc, dict))


# ---------------------------------------------------------------------------
# YAML round-trips and structural equality
# ---------------------------------------------------------------------------

@given(_documents)
@settings(max_examples=60, deadline=None)
def test_yaml_round_trip_preserves_structure(document):
    assert documents_equal(load_document(dump_document(document)), document)


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_documents_equal_is_reflexive(document):
    assert documents_equal(document, document)


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_kv_exact_match_self_is_one(document):
    text = yaml.safe_dump(document, sort_keys=False)
    assert key_value_exact_match(text, text) == 1.0


@given(_documents)
@settings(max_examples=60, deadline=None)
def test_kv_wildcard_self_is_one_and_bounded(document):
    text = yaml.safe_dump(document, sort_keys=False)
    score = key_value_wildcard_match(text, text)
    assert 0.999 <= score <= 1.0


@given(_documents, _documents)
@settings(max_examples=40, deadline=None)
def test_kv_wildcard_is_bounded_for_any_pair(a, b):
    score = key_value_wildcard_match(yaml.safe_dump(a), yaml.safe_dump(b))
    assert 0.0 <= score <= 1.0


@given(_documents)
@settings(max_examples=40, deadline=None)
def test_strip_labels_preserves_unlabeled_yaml_semantics(document):
    text = yaml.safe_dump(document, sort_keys=False)
    assert documents_equal(load_document(strip_labels(text)), document)
    tree = parse_labeled_yaml(text)
    assert tree.leaf_count() >= 1


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

@given(st.text(max_size=300))
@settings(max_examples=60, deadline=None)
def test_bleu_self_score_is_one_or_zero_for_empty(text):
    from repro.mlkit.tokenize import yaml_tokenize

    score = bleu_score(text, text)
    assert 0.0 <= score <= 1.0
    # With at least four tokens every n-gram order is populated and the
    # self-score is exactly 1; shorter texts are penalised by smoothing,
    # exactly as NLTK's smoothed sentence BLEU behaves.
    if len(yaml_tokenize(text)) >= 4:
        assert score > 0.999


@given(st.lists(st.sampled_from(["a", "b", "c", ":", "-"]), max_size=30),
       st.lists(st.sampled_from(["a", "b", "c", ":", "-"]), max_size=30))
@settings(max_examples=80, deadline=None)
def test_sentence_bleu_bounded(candidate, reference):
    assert 0.0 <= sentence_bleu(candidate, reference) <= 1.0


@given(st.text(max_size=400), st.text(max_size=400))
@settings(max_examples=60, deadline=None)
def test_edit_similarity_bounded(a, b):
    assert 0.0 <= scaled_edit_similarity(a, b) <= 1.0


@given(st.text(max_size=400))
@settings(max_examples=60, deadline=None)
def test_edit_similarity_self_is_one(text):
    assert scaled_edit_similarity(text, text) == 1.0


# ---------------------------------------------------------------------------
# Post-processing and JSONPath robustness
# ---------------------------------------------------------------------------

@given(st.text(max_size=500))
@settings(max_examples=80, deadline=None)
def test_extract_yaml_never_crashes_and_is_idempotent_in_length(text):
    extracted = extract_yaml(text)
    assert isinstance(extracted, str)
    assert len(extract_yaml(extracted)) <= len(extracted) + 1


@given(_documents)
@settings(max_examples=40, deadline=None)
def test_extract_yaml_recovers_fenced_documents(document):
    body = yaml.safe_dump(document, sort_keys=False)
    wrapped = f"Here is the configuration:\n```yaml\n{body}```\nLet me know!"
    assert key_value_exact_match(extract_yaml(wrapped), body) == 1.0


@given(_documents, st.lists(_keys, min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_jsonpath_field_chain_never_crashes(document, fields):
    expression = "{." + ".".join(fields) + "}"
    result = render_jsonpath(document, expression)
    assert isinstance(result, str)
