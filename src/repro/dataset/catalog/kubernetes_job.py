"""Job problem templates (Table 2 column "job")."""

from __future__ import annotations

from repro.dataset.catalog.common import ProblemDraft, WORKER_IMAGES, pick_app, pick_source
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _pi_job(rng: DeterministicRNG, index: int) -> ProblemDraft:
    _, namespace = pick_app(rng)
    digits = rng.choice([100, 500, 1000, 2000])
    name = f"pi-{digits}"
    question = (
        f"Write a YAML for a Kubernetes Job named \"{name}\" in the {namespace} namespace that "
        f"computes pi to {digits} places using the perl image with the command "
        f"[\"perl\", \"-Mbignum=bpi\", \"-wle\", \"print bpi({digits})\"]. The job must not restart "
        f"failed pods (restartPolicy Never) and allow at most 4 retries (backoffLimit 4)."
    )
    reference = f"""apiVersion: batch/v1
kind: Job
metadata:
  name: {name}
  namespace: {namespace}
spec:
  backoffLimit: 4
  template:
    spec:
      restartPolicy: Never
      containers:
      - name: pi  # *
        image: perl:5.34.0
        command:
        - perl
        - -Mbignum=bpi
        - -wle
        - print bpi({digits})
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Job", "complete", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.backoffLimit}", expected="4", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.template.spec.restartPolicy}", expected="Never", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.template.spec.containers[0].command[3]}", contains=str(digits), name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"job-pi-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Job",
    )


def _parallel_job(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    completions = rng.choice([3, 4, 5, 6])
    parallelism = rng.choice([2, 3])
    name = f"{app}-batch"
    image = rng.choice(WORKER_IMAGES)
    question = (
        f"Create a Job named \"{name}\" in namespace {namespace} running the {image} image with the "
        f"command [\"sh\", \"-c\", \"echo processing && sleep 5\"]. The job must run {completions} "
        f"completions with a parallelism of {parallelism} and restartPolicy OnFailure."
    )
    reference = f"""apiVersion: batch/v1
kind: Job
metadata:
  name: {name}
  namespace: {namespace}
spec:
  completions: {completions}
  parallelism: {parallelism}
  template:
    spec:
      restartPolicy: OnFailure
      containers:
      - name: worker  # *
        image: {image}
        command:
        - sh
        - -c
        - echo processing && sleep 5
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Job", "complete", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.completions}", expected=str(completions), name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.parallelism}", expected=str(parallelism), name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"job-parallel-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Job",
    )


def _migration_job(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-db-migrate"
    db_host = f"{app}-db.{namespace}.svc.cluster.local"
    question = (
        f"Write a Job YAML named \"{name}\" for the {namespace} namespace that runs a one-off "
        f"database migration using the python:3.11-slim image with the command "
        f"[\"python\", \"manage.py\", \"migrate\"]. Set the environment variable DB_HOST to "
        f"\"{db_host}\" and use restartPolicy Never."
    )
    reference = f"""apiVersion: batch/v1
kind: Job
metadata:
  name: {name}
  namespace: {namespace}
spec:
  template:
    spec:
      restartPolicy: Never
      containers:
      - name: migrate  # *
        image: python:3.11-slim
        command:
        - python
        - manage.py
        - migrate
        env:
        - name: DB_HOST
          value: {db_host}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Job", "complete", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.template.spec.containers[0].env[0].name}", expected="DB_HOST", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.template.spec.containers[0].env[0].value}", expected=db_host, name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.template.spec.containers[0].command[2]}", expected="migrate", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"job-migration-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Job",
    )


def _deadline_job(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    deadline = rng.choice([120, 300, 600, 900])
    ttl = rng.choice([60, 100, 200])
    name = f"{app}-cleanup"
    question = (
        f"Create a Job named \"{name}\" in namespace {namespace} running busybox:1.36 with the "
        f"command [\"sh\", \"-c\", \"rm -rf /tmp/cache/*\"]. The Job must be killed after "
        f"{deadline} seconds (activeDeadlineSeconds) and cleaned up {ttl} seconds after it finishes "
        f"(ttlSecondsAfterFinished). Use restartPolicy Never."
    )
    reference = f"""apiVersion: batch/v1
kind: Job
metadata:
  name: {name}
  namespace: {namespace}
spec:
  activeDeadlineSeconds: {deadline}
  ttlSecondsAfterFinished: {ttl}
  template:
    spec:
      restartPolicy: Never
      containers:
      - name: cleanup  # *
        image: busybox:1.36
        command:
        - sh
        - -c
        - rm -rf /tmp/cache/*
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("Job", "complete", name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.activeDeadlineSeconds}", expected=str(deadline), name=name, namespace=namespace),
        S.AssertJsonPath("Job", "{.spec.ttlSecondsAfterFinished}", expected=str(ttl), name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"job-deadline-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Job",
    )


_TEMPLATES = [_pi_job, _parallel_job, _migration_job, _deadline_job]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` job problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("job", index), index))
    return drafts
