"""The shard-planning layer: plans, planners, and the cost predictions
they are built on."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig
from repro.dataset.schema import Category
from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest
from repro.pipeline.planner import (
    PLANNER_NAMES,
    CostPlanner,
    CountPlanner,
    ShardPlan,
    ShardPlanner,
    resolve_planner,
)


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


# ---------------------------------------------------------------------------
# ShardPlan with explicit sizes
# ---------------------------------------------------------------------------

def test_from_sizes_keeps_explicit_cuts():
    plan = ShardPlan.from_sizes([5, 1, 4])
    assert plan.sizes == (5, 1, 4)
    assert plan.total == 10
    assert plan.bounds() == ((0, 5), (5, 6), (6, 10))
    assert [plan.shard_of(i) for i in (0, 4, 5, 6, 9)] == [0, 0, 1, 2, 2]


def test_from_sizes_drops_empty_shards():
    assert ShardPlan.from_sizes([3, 0, 2]).sizes == (3, 2)
    empty = ShardPlan.from_sizes([0, 0])
    assert (empty.total, empty.num_shards) == (0, 1)
    assert ShardPlan.from_sizes([]).num_shards == 1
    with pytest.raises(ValueError):
        ShardPlan.from_sizes([3, -1])


def test_explicit_sizes_are_validated():
    with pytest.raises(ValueError, match="entries"):
        ShardPlan(total=5, num_shards=3, explicit_sizes=(3, 2))
    with pytest.raises(ValueError, match="sum"):
        ShardPlan(total=5, num_shards=2, explicit_sizes=(3, 3))
    with pytest.raises(ValueError, match="empty shards"):
        ShardPlan(total=5, num_shards=3, explicit_sizes=(4, 0, 1))


def test_count_balanced_plans_are_unchanged():
    plan = ShardPlan.for_size(10, 4)
    assert plan.sizes == (3, 3, 2, 2)
    assert plan.explicit_sizes is None


def test_shard_of_bisect_matches_the_linear_scan():
    """Regression pin: the bisect lookup must agree with the old linear
    scan over bounds() for every index of every plan shape."""

    def linear_shard_of(plan: ShardPlan, index: int) -> int:
        for shard, (start, stop) in enumerate(plan.bounds()):
            if start <= index < stop:
                return shard
        raise AssertionError("unreachable")

    plans = [
        ShardPlan.for_size(1, 1),
        ShardPlan.for_size(10, 4),
        ShardPlan.for_size(17, 5),
        ShardPlan.for_size(100, 7),
        ShardPlan.from_sizes([5, 1, 4]),
        ShardPlan.from_sizes([1, 1, 1, 1]),
        ShardPlan.from_sizes([23, 2, 40, 9, 6]),
    ]
    for plan in plans:
        for index in range(plan.total):
            assert plan.shard_of(index) == linear_shard_of(plan, index)
    with pytest.raises(IndexError):
        ShardPlan.for_size(5, 2).shard_of(5)
    with pytest.raises(IndexError):
        ShardPlan.for_size(5, 2).shard_of(-1)


# ---------------------------------------------------------------------------
# CountPlanner — the preserved default
# ---------------------------------------------------------------------------

def test_count_planner_is_bit_identical_to_for_size(small_original_problems):
    requests = _requests(list(small_original_problems)[:23])
    for shards in (1, 2, 5, 23, 40):
        assert CountPlanner().plan(requests, shards) == ShardPlan.for_size(len(requests), shards)


# ---------------------------------------------------------------------------
# CostPlanner
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def heterogeneous_requests(small_original_problems):
    """A corpus whose per-problem predicted costs differ a lot: cheap Pod
    problems up front, image-heavy OTHERS/Istio problems at the back —
    exactly the layout that makes equal-count shards finish far apart."""

    problems = sorted(
        small_original_problems,
        key=lambda p: (p.category is not Category.POD, p.category.value),
    )
    return _requests(problems)


def test_cost_planner_plans_are_contiguous_and_exhaustive(heterogeneous_requests):
    plan = CostPlanner().plan(heterogeneous_requests, 4)
    assert plan.total == len(heterogeneous_requests)
    assert sum(plan.sizes) == plan.total
    flattened = [r for chunk in plan.split(heterogeneous_requests) for r in chunk]
    assert flattened == list(heterogeneous_requests)


def test_cost_planner_shrinks_duration_spread(heterogeneous_requests):
    planner = CostPlanner()
    for shards in (2, 3, 4, 6):
        cost_plan = planner.plan(heterogeneous_requests, shards)
        count_plan = CountPlanner().plan(heterogeneous_requests, shards)
        cost_durations = planner.predicted_durations(heterogeneous_requests, cost_plan)
        count_durations = planner.predicted_durations(heterogeneous_requests, count_plan)
        spread = max(cost_durations) - min(cost_durations)
        count_spread = max(count_durations) - min(count_durations)
        # The planner's objective is the bottleneck shard: never worse
        # than the count split's bottleneck, and strictly better spread
        # whenever the count cuts are not already cost-optimal (every
        # shard count here except 2, where the two splits coincide).
        assert max(cost_durations) <= max(count_durations)
        assert spread <= count_spread
        if shards > 2:
            assert spread < count_spread


def test_cost_planner_is_deterministic(heterogeneous_requests):
    a = CostPlanner().plan(heterogeneous_requests, 4)
    b = CostPlanner().plan(heterogeneous_requests, 4)
    assert a == b


def test_cost_planner_clamps_like_count_planner(small_original_problems):
    requests = _requests(list(small_original_problems)[:3])
    plan = CostPlanner().plan(requests, 8)
    assert plan.num_shards <= 3
    assert CostPlanner().plan([], 4) == ShardPlan.for_size(0, 4)
    with pytest.raises(ValueError):
        CostPlanner().plan(requests, 0)


def test_cost_planner_accounts_warm_cache_within_shard(small_dataset):
    """Two copies of one image-pulling problem cost less together than
    twice alone: the second pull hits the warm shard cache."""

    model = CostModel(small_dataset)
    pullers = [p for p in small_dataset if model.problem_pull_images(p)]
    assert pullers, "corpus has no image-pulling problem"
    problem = pullers[0]
    one = model.predict_problem_seconds(problem)
    pair = model.predict_problems_seconds([problem, problem])
    assert pair < 2 * one
    assert pair == pytest.approx(one + model.predict_base_seconds(problem))


def test_predict_problem_seconds_prices_pulls(small_dataset):
    model = CostModel(small_dataset)
    pullers = [p for p in small_dataset if model.problem_pull_images(p)]
    problem = pullers[0]
    cold = model.predict_problem_seconds(problem)
    warm = model.predict_problem_seconds(
        problem, cached_images=model.problem_pull_images(problem)
    )
    assert warm == pytest.approx(model.predict_base_seconds(problem))
    assert cold > warm


def test_cost_model_without_dataset_predicts_but_refuses_token_accounting(small_dataset):
    model = CostModel()
    assert model.predict_problem_seconds(small_dataset[0]) > 0
    with pytest.raises(ValueError, match="dataset"):
        model.total_prompt_tokens()


# ---------------------------------------------------------------------------
# resolve_planner + config plumbing
# ---------------------------------------------------------------------------

def test_resolve_planner_specs():
    assert isinstance(resolve_planner(None, "count"), CountPlanner)
    cost = resolve_planner(None, "cost")
    assert isinstance(cost, CostPlanner)
    explicit = CountPlanner()
    assert resolve_planner(explicit, "cost") is explicit
    with pytest.raises(ValueError, match="shard_by"):
        resolve_planner(None, "alphabetical")


def test_planners_satisfy_the_protocol():
    assert isinstance(CountPlanner(), ShardPlanner)
    assert isinstance(CostPlanner(), ShardPlanner)


def test_config_validates_shard_by_and_planner():
    assert BenchmarkConfig(shard_by="cost").shard_by == "cost"
    assert set(PLANNER_NAMES) == {"count", "cost"}
    with pytest.raises(ValueError, match="shard_by"):
        BenchmarkConfig(shard_by="alphabetical")
    with pytest.raises(ValueError, match="plan"):
        BenchmarkConfig(planner=object())
    custom = CountPlanner()
    assert BenchmarkConfig(planner=custom).planner is custom
