"""Practical data augmentation: simplification and translation (§2.2).

The paper rewrites every original question twice with GPT-4 assistance and
manual review:

* *simplified* — concise, abbreviation-heavy phrasing as used by operators
  in a hurry (Table 1 reports a 25.7 % word reduction),
* *translated* — the question in the operation team's native language
  (Chinese), keeping technical terms and code blocks untouched.

Offline we reproduce both with deterministic rule-based rewriters: an
abbreviation dictionary plus filler-phrase elision for simplification, and
a glossary-driven pseudo-translation that maps the English scaffolding of
the question to Chinese while leaving identifiers, YAML and quoted values
in place.  The rewriters only touch the question text; reference YAML and
unit tests are shared across the three variants, exactly as in the paper.
"""

from __future__ import annotations

import re

from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Variant

__all__ = ["simplify_question", "translate_question", "augment_problem", "augment_problem_set"]


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------

# Phrase-level rewrites applied first (case-insensitive).  Order matters:
# longer, more specific phrases come before their substrings.
_PHRASE_REWRITES: list[tuple[str, str]] = [
    (r"write a yaml file to create", "Create"),
    (r"write a yaml file that defines", "Define"),
    (r"write a yaml manifest for", "Create"),
    (r"please write a yaml file that defines", "Define"),
    (r"write a yaml for", "Create"),
    (r"write an envoy static configuration yaml", "Write an Envoy static config"),
    (r"write an envoy static configuration", "Write an Envoy static config"),
    (r"craft a yaml file to define", "Create"),
    (r"create a yaml for", "Create"),
    (r"please provide me the exact configuration for that\.", "Provide exact config."),
    (r"please provide the entire yaml configuration for this\.", "Provide full YAML."),
    (r"please provide the entire yaml\.", "Provide full YAML."),
    (r"provide the entire yaml\.", "Provide full YAML."),
    (r"please provide me the entire yaml", "Provide full YAML"),
    (r"please debug it to make it valid", "Debug it"),
    (r"please debug it so it applies cleanly", "Debug it"),
    (r"ensure that both the user and the clusterrole are under the", "Both user & ClusterRole under"),
    (r"it should be accessible via browser\.", "Accessible via browser."),
    (r"is there a way to provide", "Can we provide"),
    (r"i'm working with the bookinfo application in our istio setup\.", "Using bookinfo app in Istio."),
    (r"i recall there was a", "There was a"),
    (r"which ensures traffic is load balanced using the", "load balancing traffic with the"),
    (r"additionally, there is a specific subset named", "Also a subset"),
    (r"and for this subset, the traffic is load balanced with a", "with subset lb"),
    (r"the environment variables?", "env var"),
    (r"environment variables?", "env var"),
    (r"should be set to", "="),
    (r"must be set to", "="),
    (r"ensure that", ""),
    (r"ensure the", "the"),
    (r"this daemonset should run", "runs"),
    (r"the pod should run", "runs"),
    (r"that runs the", "running"),
    (r"executing it reports the error:", "error:"),
    (r"which is not functionally correct", "(broken)"),
    (r"given the following yaml", "Given this YAML"),
    (r"given the following deployment", "Given this Deployment"),
    (r"given the following pod definition", "Given this Pod"),
    (r"in the (\S+) namespace", r"in ns \1"),
    (r"in namespace (\S+)", r"in ns \1"),
    (r"for the (\S+) namespace", r"for ns \1"),
    (r"with the label", "labeled"),
    (r"with the labels", "labeled"),
    (r"labeled with", "labeled"),
    (r"the container must", "container:"),
    (r"each container must", "containers:"),
    (r"containers within the cluster", "containers"),
    (r"please help me create", "create"),
    (r"please provide", "provide"),
    (r"respectively", ""),
    (r"accompanied by", "with"),
    (r"a single", "one"),
]

# Word-level abbreviations applied after phrase rewrites.
_ABBREVIATIONS: dict[str, str] = {
    "kubernetes": "k8s",
    "deployment": "deploy",
    "deployments": "deploys",
    "service": "svc",
    "services": "svcs",
    "namespace": "ns",
    "namespaces": "ns",
    "configuration": "config",
    "configurations": "configs",
    "configmap": "cm",
    "persistentvolumeclaim": "PVC",
    "persistentvolume": "PV",
    "horizontalpodautoscaler": "HPA",
    "load balancer": "LB",
    "loadbalancer": "LB",
    "memory": "mem",
    "replicas": "reps",
    "container": "ctr",
    "containers": "ctrs",
    "application": "app",
    "request": "req",
    "requests": "reqs",
    "destination": "dest",
    "specifically": "",
    "additionally": "also",
}

_WS_RE = re.compile(r"[ \t]+")


def simplify_question(question: str) -> str:
    """Rewrite a question in concise, abbreviation-heavy operator style."""

    simplified = question
    for pattern, replacement in _PHRASE_REWRITES:
        simplified = re.sub(pattern, replacement, simplified, flags=re.IGNORECASE)

    def _abbreviate(match: re.Match[str]) -> str:
        word = match.group(0)
        replacement = _ABBREVIATIONS.get(word.lower())
        if replacement is None:
            return word
        return replacement

    # Only abbreviate bare words, never text inside quotes (names the model
    # must reproduce verbatim stay intact).
    parts = re.split(r'("[^"]*")', simplified)
    for i, part in enumerate(parts):
        if part.startswith('"'):
            continue
        parts[i] = re.sub(r"[A-Za-z]+(?: balancer)?", _abbreviate, part)
    simplified = "".join(parts)
    simplified = _WS_RE.sub(" ", simplified)
    simplified = re.sub(r"\s+([,.])", r"\1", simplified)
    simplified = re.sub(r"\.\s*\.", ".", simplified)
    return simplified.strip()


# ---------------------------------------------------------------------------
# Translation (glossary-driven pseudo-translation to Chinese)
# ---------------------------------------------------------------------------

_TRANSLATION_GLOSSARY: list[tuple[str, str]] = [
    (r"write a yaml file to create", "写一个 YAML 来创建"),
    (r"write a yaml file that defines", "请写一个 YAML，定义"),
    (r"write a yaml manifest for", "写一个 YAML 清单，定义"),
    (r"write a yaml for", "写一个 YAML，定义"),
    (r"write an envoy static configuration yaml", "写一个 Envoy 静态配置 YAML"),
    (r"write an envoy static configuration", "写一个 Envoy 静态配置"),
    (r"craft a yaml file to define", "写一个 yaml 来定义"),
    (r"create an?", "创建一个"),
    (r"create", "创建"),
    (r"define", "定义"),
    (r"given the following yaml", "给定以下 YAML"),
    (r"given the following deployment", "给定以下 Deployment"),
    (r"given the following pod definition", "给定以下 Pod 定义"),
    (r"given this yaml", "给定以下 YAML"),
    (r"which is not functionally correct", "（功能上不正确）"),
    (r"executing it reports the error:", "执行时报告错误："),
    (r"please debug it to make it valid", "请调试使其有效"),
    (r"please debug it so it applies cleanly", "请调试使其能正常 apply"),
    (r"please provide the entire yaml configuration for this\.", "请为此提供完整的 YAML 配置。"),
    (r"please provide the entire yaml\.", "请提供整个 YAML。"),
    (r"provide the entire yaml\.", "请提供整个 YAML。"),
    (r"please provide me the exact configuration for that\.", "请为此提供确切的配置。"),
    (r"please help me create", "请帮我创建"),
    (r"i'm working with the bookinfo application in our istio setup\.", "我正在 Istio 配置中使用 bookinfo 应用。"),
    (r"i recall there was a", "我记得有一个"),
    (r"i need an?", "我需要一个"),
    (r"in the (\S+) namespace", r"在 \1 命名空间中"),
    (r"in namespace (\S+)", r"在命名空间 \1 中"),
    (r"for the (\S+) namespace", r"用于 \1 命名空间"),
    (r"named", "名为"),
    (r"labeled as", "标签为"),
    (r"labeled", "标签为"),
    (r"with the labels?", "标签为"),
    (r"the environment variables?", "环境变量"),
    (r"environment variables?", "环境变量"),
    (r"should be set to", "应设置为"),
    (r"must be set to", "必须设置为"),
    (r"should run", "应运行"),
    (r"that runs", "运行"),
    (r"running", "运行"),
    (r"and exposes?", "并暴露"),
    (r"exposed on port", "暴露在端口"),
    (r"expose container port", "暴露容器端口"),
    (r"on port", "在端口"),
    (r"with port", "端口为"),
    (r"replicas of", "个副本，镜像为"),
    (r"replicas", "副本数"),
    (r"it should be accessible via browser\.", "它应该可以通过浏览器访问。"),
    (r"accessible via browser", "可以通过浏览器访问"),
    (r"ensure that", "确保"),
    (r"ensure the", "确保"),
    (r"the cpu request is set to", "CPU 请求设置为"),
    (r"memory request is set to", "内存请求设置为"),
    (r"cpu limit is set to", "CPU 限制设置为"),
    (r"memory limit is set to", "内存限制设置为"),
    (r"requests?", "请求"),
    (r"limits?", "限制"),
    (r"this rolebinding should bind the user", "这个 RoleBinding 应将用户"),
    (r"to the clusterrole named", "绑定到名为如下的 ClusterRole："),
    (r"both the user and the clusterrole are under the", "用户和 ClusterRole 都属于"),
    (r"api group", "API 组"),
    (r"which ensures traffic is load balanced using the", "它确保使用如下策略进行流量负载均衡："),
    (r"load balanced", "负载均衡"),
    (r"load balancer", "负载均衡器"),
    (r"load balancing", "负载均衡"),
    (r"strategy", "策略"),
    (r"with the command", "命令为"),
    (r"with the argument", "参数为"),
    (r"and the argument", "参数为"),
    (r"the job must", "该 Job 必须"),
    (r"the pod label should be", "Pod 标签应为"),
    (r"please", "请"),
    (r"provide", "提供"),
    (r"and", "和"),
    (r"with", "带有"),
    (r"the", ""),
    (r"that", ""),
    (r"should", "应"),
    (r"must", "必须"),
    (r"using", "使用"),
    (r"uses", "使用"),
    (r"use", "使用"),
    (r"every node", "每个节点"),
    (r"instead of", "而不是"),
    (r"so that", "以便"),
    (r"between", "介于"),
    (r"targeting", "目标为"),
    (r"selects pods", "选择 Pod"),
    (r"selecting pods", "选择 Pod"),
    (r"pods", "Pod"),
    (r"it", "它"),
    (r"all", "所有"),
    (r"to", "到"),
    (r"for", "用于"),
    (r"of", ""),
    (r"a", ""),
    (r"an", ""),
]


def translate_question(question: str) -> str:
    """Pseudo-translate a question into developer-style Chinese.

    Quoted strings, back-tick/code fragments and identifiers that contain
    punctuation (image references, DNS names, label key/values) are left
    untouched, mirroring the paper's instruction not to modify code.
    """

    parts = re.split(r'("[^"]*"|`[^`]*`)', question)
    translated_parts: list[str] = []
    for part in parts:
        if part.startswith('"') or part.startswith("`"):
            translated_parts.append(part)
            continue
        text = part
        for pattern, replacement in _TRANSLATION_GLOSSARY:
            # ``\b`` does not anchor correctly when the pattern starts or
            # ends with punctuation (e.g. a trailing ``\.``), so use explicit
            # word-character lookarounds instead.
            bounded = rf"(?<![\w])(?:{pattern})(?![\w])"
            text = re.sub(bounded, replacement, text, flags=re.IGNORECASE)
        translated_parts.append(text)
    translated = "".join(translated_parts)
    translated = _WS_RE.sub(" ", translated)
    translated = re.sub(r"\s+([,.:;，。])", r"\1", translated)
    translated = translated.replace(". ", "。").rstrip(".") + "。"
    return translated.strip()


# ---------------------------------------------------------------------------
# Problem-level augmentation
# ---------------------------------------------------------------------------

def augment_problem(problem: Problem) -> list[Problem]:
    """Return the simplified and translated siblings of an original problem."""

    if problem.variant is not Variant.ORIGINAL:
        raise ValueError("only original problems can be augmented")
    variants: list[Problem] = []
    for variant, rewriter in ((Variant.SIMPLIFIED, simplify_question), (Variant.TRANSLATED, translate_question)):
        variants.append(
            Problem(
                problem_id=f"{problem.base_id}-{variant.value}",
                base_id=problem.base_id,
                category=problem.category,
                variant=variant,
                question=rewriter(problem.question),
                yaml_context=problem.yaml_context,
                reference_yaml=problem.reference_yaml,
                unit_test=problem.unit_test,
                difficulty=problem.difficulty,
                source=problem.source,
                metadata=dict(problem.metadata),
            )
        )
    return variants


def augment_problem_set(originals: ProblemSet) -> ProblemSet:
    """Expand an original-only problem set into the full augmented corpus."""

    problems: list[Problem] = []
    for problem in originals:
        if problem.variant is not Variant.ORIGINAL:
            raise ValueError("augment_problem_set expects an original-only ProblemSet")
        problems.append(problem)
        problems.extend(augment_problem(problem))
    return ProblemSet(problems)
