"""The shared capped-exponential BackoffPolicy."""

from __future__ import annotations

import pytest

from repro.utils.backoff import BackoffPolicy


class TestBackoffPolicy:
    def test_capped_exponential_schedule(self):
        policy = BackoffPolicy(initial_seconds=0.2, multiplier=2.0, max_seconds=1.0, attempts=6)
        assert list(policy.delays()) == [0.2, 0.4, 0.8, 1.0, 1.0]

    def test_matches_the_live_endpoint_legacy_schedule(self):
        # LiveEndpointModel's historical backoff_seconds=0.5/multiplier=2.0
        # contract: the policy must reproduce [0.5, 1.0] exactly.
        policy = BackoffPolicy(initial_seconds=0.5, multiplier=2.0, max_seconds=60.0, attempts=3)
        assert list(policy.delays()) == [0.5, 1.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(
            initial_seconds=1.0, multiplier=1.0, max_seconds=1.0, attempts=8, jitter=0.25, seed=9
        )
        schedule = list(policy.delays("store-a"))
        assert schedule == list(policy.delays("store-a"))  # pure function of inputs
        assert all(0.75 <= delay <= 1.25 for delay in schedule)
        assert len(set(schedule)) > 1  # jitter actually varies by retry index
        assert schedule != list(policy.delays("store-b"))  # context de-synchronises

    def test_no_jitter_means_exact_delays(self):
        policy = BackoffPolicy(initial_seconds=0.1, multiplier=3.0, max_seconds=10.0, attempts=4)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.3)
        assert policy.delay(2) == pytest.approx(0.9)

    def test_sleep_uses_the_injected_sleeper(self):
        slept = []
        policy = BackoffPolicy(initial_seconds=0.5, multiplier=2.0, max_seconds=9.0, attempts=3)
        assert policy.sleep(1, sleeper=slept.append) == 1.0
        assert slept == [1.0]
        zero = BackoffPolicy(initial_seconds=0.0, attempts=2)
        assert zero.sleep(0, sleeper=slept.append) == 0.0
        assert slept == [1.0]  # zero delays never call the sleeper

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial_seconds=-0.1)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)
