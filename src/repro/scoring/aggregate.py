"""Aggregate scoring: run every metric on one answer and collect the results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.problem import Problem
from repro.postprocess import extract_yaml
from repro.scoring.function_level import run_unit_test
from repro.scoring.text_level import bleu, edit_distance_score, exact_match
from repro.scoring.yaml_aware import key_value_exact_match, key_value_wildcard_match

__all__ = ["METRIC_NAMES", "ScoreCard", "score_answer", "score_answer_legacy"]

#: Metric names in the column order of Table 4.
METRIC_NAMES: tuple[str, ...] = (
    "bleu",
    "edit_distance",
    "exact_match",
    "kv_exact",
    "kv_wildcard",
    "unit_test",
)


@dataclass(frozen=True)
class ScoreCard:
    """All six metric values for one (problem, answer) pair."""

    problem_id: str
    bleu: float
    edit_distance: float
    exact_match: float
    kv_exact: float
    kv_wildcard: float
    unit_test: float
    extracted_yaml: str = ""
    failure_message: str = ""

    def as_dict(self) -> dict[str, float]:
        """Metric values keyed by the Table 4 column names."""

        return {
            "bleu": self.bleu,
            "edit_distance": self.edit_distance,
            "exact_match": self.exact_match,
            "kv_exact": self.kv_exact,
            "kv_wildcard": self.kv_wildcard,
            "unit_test": self.unit_test,
        }

    def text_features(self) -> list[float]:
        """Feature vector (text-level + YAML-aware scores) for the predictor."""

        return [self.bleu, self.edit_distance, self.exact_match, self.kv_exact, self.kv_wildcard]


def score_answer(problem: Problem, raw_response: str, run_unit_tests: bool = True) -> ScoreCard:
    """Post-process a raw response and compute every metric against the problem.

    ``run_unit_tests=False`` skips the (comparatively expensive) functional
    evaluation, which is what the unit-test-prediction experiment (§4.4)
    simulates avoiding; the ``unit_test`` field is then reported as 0.0.

    Scoring goes through the compiled-reference engine
    (:mod:`repro.scoring.compiled`): the problem's reference artifacts are
    precomputed on first use and reused on every subsequent call.  The
    result is identical to :func:`score_answer_legacy`, which recomputes
    everything from the raw strings.
    """

    from repro.scoring.compiled import get_compiled_reference, score_answer_compiled

    compiled = get_compiled_reference(problem)
    return score_answer_compiled(compiled, raw_response, run_unit_tests=run_unit_tests)


def score_answer_legacy(problem: Problem, raw_response: str, run_unit_tests: bool = True) -> ScoreCard:
    """The original string-based scoring path, kept as the reference
    implementation: every metric re-derives its reference artifacts from the
    problem's raw YAML text.  Used by the equivalence tests and as the
    baseline for the scoring-throughput benchmark.
    """

    extracted = extract_yaml(raw_response)
    reference_plain = problem.reference_plain()

    unit_test_value = 0.0
    failure_message = ""
    if run_unit_tests:
        result = run_unit_test(problem, extracted)
        unit_test_value = result.score
        failure_message = result.message

    return ScoreCard(
        problem_id=problem.problem_id,
        bleu=bleu(extracted, reference_plain),
        edit_distance=edit_distance_score(extracted, reference_plain),
        exact_match=exact_match(extracted, reference_plain),
        kv_exact=key_value_exact_match(extracted, reference_plain),
        kv_wildcard=key_value_wildcard_match(extracted, problem.reference_yaml),
        unit_test=unit_test_value,
        extracted_yaml=extracted,
        failure_message=failure_message,
    )
