"""Running-cost model of the benchmark (Table 3, §3.4) and the per-problem
wall-clock predictor behind cost-aware shard planning (Figure 5).

Three cost components are modelled:

* **LLM inference** — per-token pricing for API models (GPT-3.5) and
  per-second GPU pricing for models served through replicate.com
  (Llama-7b), applied to the dataset's prompt/completion token counts.
* **Cloud evaluation** — the GCP bill for the evaluation cluster: number of
  instances × hourly price × the wall-clock hours predicted by the
  Figure 5 simulation (or taken from its published measurements).
* **Per-problem seconds** — :meth:`CostModel.predict_problem_seconds`
  turns the Figure 5 timing model into a deterministic per-problem
  prediction: the measured base execution time plus image-pull time over
  the shared uplink, with warm registry-cache hits (images already pulled
  by an earlier problem in the same shard) priced at zero.  The shard
  planner uses it to split a run so shards *finish together* instead of
  merely holding the same number of requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dataset.problem import Problem, ProblemSet
from repro.evalcluster.simulation import ClusterSimulationConfig, job_base_seconds, job_images
from repro.kubesim.images import image_size_mb, normalize_image

__all__ = ["CostModel", "InferenceOption", "EvaluationOption", "benchmark_cost_table"]


@dataclass(frozen=True)
class InferenceOption:
    """Pricing of one way to obtain model answers."""

    name: str
    input_price_per_1k_tokens: float = 0.0
    output_price_per_1k_tokens: float = 0.0
    gpu_price_per_hour: float = 0.0
    tokens_per_second: float = 30.0  # throughput when paying per GPU-second


@dataclass(frozen=True)
class EvaluationOption:
    """Pricing of one cloud-evaluation setting."""

    name: str
    instances: int
    price_per_instance_hour: float
    wall_clock_hours: float
    master_price_per_hour: float = 0.0


# Defaults mirror the options in Table 3 (GCP e2-standard-4-class machines,
# October 2023 list prices, 1011 problems).
DEFAULT_INFERENCE_OPTIONS: tuple[InferenceOption, ...] = (
    InferenceOption("gpt-3.5", input_price_per_1k_tokens=0.0015, output_price_per_1k_tokens=0.002),
    InferenceOption("llama-7b", gpu_price_per_hour=1.40, tokens_per_second=18.0),
)

DEFAULT_EVALUATION_OPTIONS: tuple[EvaluationOption, ...] = (
    EvaluationOption("gcp-spot-x1", instances=1, price_per_instance_hour=0.067, wall_clock_hours=10.3),
    EvaluationOption("gcp-spot-x64", instances=64, price_per_instance_hour=0.067, wall_clock_hours=0.5, master_price_per_hour=0.067),
    EvaluationOption("gcp-standard-x64", instances=64, price_per_instance_hour=0.168, wall_clock_hours=0.5, master_price_per_hour=0.168),
)


@dataclass
class CostModel:
    """Compute the cost of one full benchmark run over a dataset.

    ``dataset`` feeds the token accounting of Table 3; the per-problem
    wall-clock predictor (:meth:`predict_problem_seconds`) works on any
    problem and only needs ``simulation`` — the Figure 5 timing
    parameters — so a planner may build a dataset-less ``CostModel()``.
    """

    dataset: ProblemSet | None = None
    prompt_overhead_tokens: int = 90  # the shared prompt template
    simulation: ClusterSimulationConfig = field(default_factory=ClusterSimulationConfig)
    # Per-problem prediction memos.  The shard planner prices every request
    # and the work-stealing scheduler re-predicts remaining seconds on every
    # claim, so the same problem is priced many times per run; both
    # predictions are pure in the problem, so they are cached by problem id.
    # A subclass that folds new information in should clear exactly the
    # memos that depend on it (the calibration loop clears only
    # ``_base_seconds_cache`` on a store version bump — image lists are
    # pure in the problem and stay warm; see CalibratedCostModel._refresh);
    # :meth:`invalidate_predictions` is the blunt full reset.
    _base_seconds_cache: dict[str, float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _pull_images_cache: dict[str, tuple[str, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def invalidate_predictions(self) -> None:
        """Drop every per-problem prediction memo (blunt full reset)."""

        self._base_seconds_cache.clear()
        self._pull_images_cache.clear()

    # -- token accounting ---------------------------------------------------
    def _dataset(self) -> ProblemSet:
        if self.dataset is None:
            raise ValueError("token accounting needs a CostModel built with a dataset")
        return self.dataset

    def total_prompt_tokens(self) -> int:
        return sum(p.question_tokens() + self.prompt_overhead_tokens for p in self._dataset())

    def total_completion_tokens(self) -> int:
        return sum(p.solution_tokens() for p in self._dataset())

    # -- per-problem wall-clock prediction (Figure 5) -----------------------
    def predict_base_seconds(self, problem: Problem) -> float:
        """Expected execution seconds once every image is local (memoised).

        Shares the simulation's job-pricing formula
        (:func:`~repro.evalcluster.simulation.job_base_seconds`), with the
        heavy tail (wait timeouts, flaky pulls) folded in as its
        expectation instead of a per-run Bernoulli draw.
        """

        cached = self._base_seconds_cache.get(problem.problem_id)
        if cached is None:
            cached = self._compute_base_seconds(problem)
            self._base_seconds_cache[problem.problem_id] = cached
        return cached

    def _compute_base_seconds(self, problem: Problem) -> float:
        """The uncached Figure 5 base prediction (the calibration seam)."""

        config = self.simulation
        return job_base_seconds(
            problem,
            config,
            slow_extra_seconds=config.slow_job_fraction * config.slow_job_extra_seconds,
        )

    def problem_pull_images(self, problem: Problem) -> tuple[str, ...]:
        """Images the problem's unit test pulls over the network (memoised).

        The simulation's job image list
        (:func:`~repro.evalcluster.simulation.job_images`) minus the
        Minikube-preloaded base images, which never hit the network;
        everything else is a candidate registry-cache hit.
        """

        cached = self._pull_images_cache.get(problem.problem_id)
        if cached is None:
            cached = self._compute_pull_images(problem)
            self._pull_images_cache[problem.problem_id] = cached
        return cached

    def _compute_pull_images(self, problem: Problem) -> tuple[str, ...]:
        """The uncached network-pull image list (the calibration seam)."""

        preloaded = {normalize_image(image) for image in self.simulation.preloaded_images}
        return tuple(
            image for image in job_images(problem) if normalize_image(image) not in preloaded
        )

    def problem_charge_images(self, problem: Problem) -> tuple[str, ...]:
        """Images whose pull time is *charged* on top of the base seconds.

        Identical to :meth:`problem_pull_images` for the pure Figure 5
        model.  The two lists differ only under calibration: an observed
        problem's measured duration already contains whatever transfer
        happened, so nothing is charged for it — but its images still
        land in the worker's local cache and must keep warming the shard
        for later problems that share them.
        """

        return self.problem_pull_images(problem)

    def image_pull_seconds(self, image: str) -> float:
        """Seconds to pull one image over the shared internet uplink."""

        return image_size_mb(image) * 8.0 / self.simulation.internet_bandwidth_mbps

    def predict_problem_seconds(
        self, problem: Problem, *, cached_images: Iterable[str] = ()
    ) -> float:
        """Predicted evaluation seconds of one problem on one worker.

        ``cached_images`` are images already present in the worker's local
        cache (pulled by an earlier problem in the same shard); their pull
        time is zero — the warm-registry-cache effect that makes a shard's
        predicted duration depend on which problems share it.
        """

        cached = {normalize_image(image) for image in cached_images}
        pull = 0.0
        for image in self.problem_charge_images(problem):
            if normalize_image(image) not in cached:
                pull += self.image_pull_seconds(image)
                cached.add(normalize_image(image))
        return self.predict_base_seconds(problem) + pull

    def predict_problems_seconds(self, problems: Iterable[Problem]) -> float:
        """Predicted seconds to evaluate ``problems`` back to back on one
        worker whose image cache starts cold and stays warm across them."""

        cached: set[str] = set()
        total = 0.0
        for problem in problems:
            total += self.predict_problem_seconds(problem, cached_images=cached)
            cached.update(self.problem_pull_images(problem))
        return total

    # -- component costs ------------------------------------------------------
    def inference_cost(self, option: InferenceOption) -> float:
        """Dollar cost of generating one answer per problem with ``option``."""

        prompt_tokens = self.total_prompt_tokens()
        completion_tokens = self.total_completion_tokens()
        if option.gpu_price_per_hour > 0:
            generation_seconds = completion_tokens / max(option.tokens_per_second, 1e-6)
            return option.gpu_price_per_hour * generation_seconds / 3600.0
        return (
            prompt_tokens / 1000.0 * option.input_price_per_1k_tokens
            + completion_tokens / 1000.0 * option.output_price_per_1k_tokens
        )

    def evaluation_cost(self, option: EvaluationOption) -> float:
        """Dollar cost of running the unit tests with ``option``."""

        worker_cost = option.instances * option.price_per_instance_hour * option.wall_clock_hours
        master_cost = option.master_price_per_hour * option.wall_clock_hours
        return worker_cost + master_cost

    def total_cost(self, inference: InferenceOption, evaluation: EvaluationOption) -> float:
        return self.inference_cost(inference) + self.evaluation_cost(evaluation)


def benchmark_cost_table(
    dataset: ProblemSet,
    inference_options: tuple[InferenceOption, ...] = DEFAULT_INFERENCE_OPTIONS,
    evaluation_options: tuple[EvaluationOption, ...] = DEFAULT_EVALUATION_OPTIONS,
) -> dict[str, float]:
    """Reproduce Table 3: per-option costs plus the cheapest/most expensive totals.

    Returns a flat mapping with ``inference:<name>``, ``evaluation:<name>``,
    ``total:min`` and ``total:max`` entries (dollars).
    """

    model = CostModel(dataset)
    table: dict[str, float] = {}
    for option in inference_options:
        table[f"inference:{option.name}"] = model.inference_cost(option)
    for option in evaluation_options:
        table[f"evaluation:{option.name}"] = model.evaluation_cost(option)
    totals = [
        model.total_cost(inference, evaluation)
        for inference in inference_options
        for evaluation in evaluation_options
    ]
    table["total:min"] = min(totals)
    table["total:max"] = max(totals)
    return table
