"""The CloudEval-YAML benchmark driver.

``CloudEvalBenchmark`` ties the pieces together: for every requested model
it builds prompts, queries the model through the
:class:`~repro.llm.interface.QueryModule`, post-processes and scores every
response, and aggregates the results into per-model and per-benchmark
summaries that the analysis layer turns into the paper's tables and
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import BenchmarkConfig
from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Variant
from repro.llm.interface import GenerationRequest, Model, QueryModule
from repro.llm.registry import ENGLISH_ONLY_MODELS, available_models, calibrate_models, get_model
from repro.llm.simulated import SimulatedModel
from repro.scoring.aggregate import METRIC_NAMES, ScoreCard
from repro.scoring.compiled import ReferenceStore, score_batch

__all__ = ["EvaluationRecord", "ModelEvaluation", "BenchmarkResult", "CloudEvalBenchmark"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One scored response."""

    model_name: str
    problem_id: str
    base_id: str
    category: str
    application: str
    variant: str
    has_code_context: bool
    solution_lines: int
    question_tokens: int
    shots: int
    sample_index: int
    scores: ScoreCard
    raw_response: str = ""


@dataclass
class ModelEvaluation:
    """All scored responses of one model plus aggregation helpers."""

    model_name: str
    records: list[EvaluationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # -- filters ------------------------------------------------------------
    def filter(self, **criteria: object) -> list[EvaluationRecord]:
        """Select records matching every keyword criterion (attribute equality)."""

        out = []
        for record in self.records:
            if all(getattr(record, key) == value for key, value in criteria.items()):
                out.append(record)
        return out

    def first_samples(self) -> list[EvaluationRecord]:
        """Records of the first sample only (the zero-/few-shot view)."""

        return [r for r in self.records if r.sample_index == 0]

    # -- aggregations ---------------------------------------------------------
    def mean_scores(self, records: Sequence[EvaluationRecord] | None = None) -> dict[str, float]:
        """Average every metric over ``records`` (default: first samples)."""

        records = self.first_samples() if records is None else list(records)
        if not records:
            return {name: 0.0 for name in METRIC_NAMES}
        # One pass over the records, collecting every metric column as we go.
        columns: dict[str, list[float]] = {name: [] for name in METRIC_NAMES}
        for record in records:
            scores = record.scores
            for name in METRIC_NAMES:
                columns[name].append(getattr(scores, name))
        return {name: float(np.mean(values)) for name, values in columns.items()}

    def pass_count(self, variant: str | None = None, shots: int | None = None) -> int:
        """Number of problems whose first sample passes the unit test."""

        count = 0
        for record in self.first_samples():
            if variant is not None and record.variant != variant:
                continue
            if shots is not None and record.shots != shots:
                continue
            if record.scores.unit_test >= 1.0:
                count += 1
        return count

    def unit_test_score(self, variant: str | None = None) -> float:
        """Mean unit-test score over first samples (optionally one variant)."""

        records = self.first_samples()
        if variant is not None:
            records = [r for r in records if r.variant == variant]
        if not records:
            return 0.0
        return float(np.mean([r.scores.unit_test for r in records]))


@dataclass
class BenchmarkResult:
    """Results of evaluating several models on the same dataset."""

    evaluations: dict[str, ModelEvaluation] = field(default_factory=dict)

    def models(self) -> list[str]:
        return list(self.evaluations)

    def __getitem__(self, model_name: str) -> ModelEvaluation:
        return self.evaluations[model_name]

    def leaderboard(self) -> list[tuple[str, dict[str, float]]]:
        """(model, mean scores) rows sorted by descending unit-test score."""

        rows = [(name, evaluation.mean_scores()) for name, evaluation in self.evaluations.items()]
        return sorted(rows, key=lambda row: row[1]["unit_test"], reverse=True)

    def all_records(self) -> list[EvaluationRecord]:
        return [record for evaluation in self.evaluations.values() for record in evaluation.records]


class CloudEvalBenchmark:
    """End-to-end benchmark runner over a :class:`ProblemSet`."""

    def __init__(self, dataset: ProblemSet, config: BenchmarkConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or BenchmarkConfig()
        # Compiled references are shared across every model evaluated by
        # this benchmark: each problem's reference is parsed exactly once.
        self._references = ReferenceStore()

    # ------------------------------------------------------------------
    # Model resolution
    # ------------------------------------------------------------------
    def _resolve_model(self, model: Model | str) -> Model:
        resolved = get_model(model, seed=self.config.seed) if isinstance(model, str) else model
        if self.config.calibrate and isinstance(resolved, SimulatedModel):
            resolved = calibrate_models([resolved], self.dataset)[0]
        return resolved

    def _problems(self, variants: Sequence[Variant] | None = None) -> list[Problem]:
        selected = tuple(variants) if variants is not None else self.config.variants
        return [p for p in self.dataset if p.variant in selected]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_model(
        self,
        model: Model | str,
        problems: Iterable[Problem] | None = None,
        shots: int | None = None,
        samples: int | None = None,
    ) -> ModelEvaluation:
        """Evaluate one model and return its scored records."""

        resolved = self._resolve_model(model)
        shots = self.config.shots if shots is None else shots
        samples = self.config.samples if samples is None else samples
        problem_list = list(problems) if problems is not None else self._problems()

        # English-only models skip translated questions, as in the paper.
        if resolved.name in ENGLISH_ONLY_MODELS:
            problem_list = [p for p in problem_list if p.variant is not Variant.TRANSLATED]

        query = QueryModule(resolved, max_workers=self.config.max_workers)
        requests = [
            GenerationRequest(problem=problem, shots=shots, sample_index=sample)
            for problem in problem_list
            for sample in range(samples)
        ]
        results = query.query_batch(requests)

        # Batch scoring: identical (problem, response) pairs are scored
        # once, and the compiled references are shared benchmark-wide.
        cards = score_batch(
            ((result.request.problem, result.response) for result in results),
            run_unit_tests=self.config.run_unit_tests,
            store=self._references,
            max_workers=self.config.max_workers,
        )

        evaluation = ModelEvaluation(model_name=resolved.name)
        for result, card in zip(results, cards):
            problem = result.request.problem
            evaluation.records.append(
                EvaluationRecord(
                    model_name=resolved.name,
                    problem_id=problem.problem_id,
                    base_id=problem.base_id,
                    category=problem.category.value,
                    application=problem.application,
                    variant=problem.variant.value,
                    has_code_context=problem.has_code_context,
                    solution_lines=problem.solution_lines(),
                    question_tokens=problem.question_tokens(),
                    shots=result.request.shots,
                    sample_index=result.request.sample_index,
                    scores=card,
                    raw_response=result.response,
                )
            )
        return evaluation

    def evaluate_models(
        self,
        models: Sequence[Model | str] | None = None,
        problems: Iterable[Problem] | None = None,
        shots: int | None = None,
        samples: int | None = None,
    ) -> BenchmarkResult:
        """Evaluate several models (default: all twelve from the registry)."""

        names = list(models) if models is not None else available_models()
        problem_list = list(problems) if problems is not None else None
        result = BenchmarkResult()
        for model in names:
            evaluation = self.evaluate_model(model, problems=problem_list, shots=shots, samples=samples)
            result.evaluations[evaluation.model_name] = evaluation
        return result
