"""Problem and ProblemSet data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.dataset.schema import Category, Variant
from repro.testexec.steps import UnitTestProgram
from repro.utils.text import count_tokens, count_words
from repro.yamlkit.labels import strip_labels

__all__ = ["Problem", "ProblemSet"]


@dataclass(frozen=True)
class Problem:
    """A single benchmark problem.

    Attributes
    ----------
    problem_id:
        Stable identifier, e.g. ``"k8s-pod-0007-original"``.
    base_id:
        Identifier shared by the three variants of the same problem
        (``"k8s-pod-0007"``); used to join original/simplified/translated
        rows in Table 5.
    category / variant:
        Taxonomy values (Table 2 / §2.2).
    question:
        Natural-language problem description (without the prompt template).
    yaml_context:
        Optional YAML snippet included in the question ("W/ Code" problems
        in Figure 6).
    reference_yaml:
        Labeled reference YAML (with ``# *`` / ``# v in [...]`` comments).
    unit_test:
        Structured unit-test program executed by :mod:`repro.testexec`.
    difficulty:
        Scalar in [0, 1] summarising how hard the problem is; derived from
        the solution length and category by the builder and consumed by the
        simulated models.
    source:
        Provenance tag mimicking the paper's sources (documentation,
        stackoverflow, blog).
    """

    problem_id: str
    base_id: str
    category: Category
    variant: Variant
    question: str
    reference_yaml: str
    unit_test: UnitTestProgram
    yaml_context: str | None = None
    difficulty: float = 0.5
    source: str = "documentation"
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- pickling ------------------------------------------------------------
    # Derived artifacts (the compiled reference, the image list) are cached
    # on the instance via object.__setattr__ by their consumers.  They are
    # recomputable and several times larger than the problem itself, so
    # pickles carry only the declared fields — a process-pool task envelope
    # stays small no matter what was cached on the instance beforehand.
    def __getstate__(self) -> dict[str, Any]:
        return {name: self.__dict__[name] for name in self.__dataclass_fields__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- derived views ------------------------------------------------------
    @property
    def has_code_context(self) -> bool:
        """Whether the question embeds a YAML context."""

        return bool(self.yaml_context and self.yaml_context.strip())

    @property
    def application(self) -> str:
        """kubernetes / envoy / istio (Figure 6 grouping)."""

        return self.category.application

    def full_question(self) -> str:
        """Question text as shown to a model (context appended in a fence)."""

        if not self.has_code_context:
            return self.question
        return f"{self.question}\n```\n{self.yaml_context.rstrip()}\n```"

    def reference_plain(self) -> str:
        """Reference YAML with label comments stripped (the ideal answer)."""

        return strip_labels(self.reference_yaml)

    # -- statistics used by Tables 1, 2 and 9 -------------------------------
    def question_words(self) -> int:
        return count_words(self.full_question())

    def question_tokens(self) -> int:
        return count_tokens(self.full_question())

    def solution_lines(self) -> int:
        return len([line for line in self.reference_plain().splitlines() if line.strip()])

    def solution_tokens(self) -> int:
        return count_tokens(self.reference_plain())

    def unit_test_lines(self) -> int:
        return self.unit_test.line_count()

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "problem_id": self.problem_id,
            "base_id": self.base_id,
            "category": self.category.value,
            "variant": self.variant.value,
            "question": self.question,
            "yaml_context": self.yaml_context,
            "reference_yaml": self.reference_yaml,
            "unit_test": self.unit_test.to_dict(),
            "difficulty": self.difficulty,
            "source": self.source,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Problem":
        return cls(
            problem_id=str(data["problem_id"]),
            base_id=str(data["base_id"]),
            category=Category(data["category"]),
            variant=Variant(data["variant"]),
            question=str(data["question"]),
            yaml_context=data.get("yaml_context"),
            reference_yaml=str(data["reference_yaml"]),
            unit_test=UnitTestProgram.from_dict(data["unit_test"]),
            difficulty=float(data.get("difficulty", 0.5)),
            source=str(data.get("source", "documentation")),
            metadata=dict(data.get("metadata", {})),
        )


class ProblemSet:
    """An ordered, filterable collection of problems."""

    def __init__(self, problems: Iterable[Problem]) -> None:
        self._problems = list(problems)
        self._by_id = {p.problem_id: p for p in self._problems}
        if len(self._by_id) != len(self._problems):
            raise ValueError("duplicate problem_id values in ProblemSet")
        # Variant/category partitions are built lazily on first use; the
        # collection is immutable so the indexes never go stale.
        self._variant_index: dict[Variant, ProblemSet] | None = None
        self._category_index: dict[Category, ProblemSet] | None = None

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._problems)

    def __iter__(self) -> Iterator[Problem]:
        return iter(self._problems)

    def __getitem__(self, index: int) -> Problem:
        return self._problems[index]

    def get(self, problem_id: str) -> Problem:
        return self._by_id[problem_id]

    # -- filtering ------------------------------------------------------------
    def filter(self, predicate: Callable[[Problem], bool]) -> "ProblemSet":
        return ProblemSet(p for p in self._problems if predicate(p))

    @staticmethod
    def _partition(problems: list[Problem], key: Callable[[Problem], Any]) -> dict[Any, "ProblemSet"]:
        groups: dict[Any, list[Problem]] = {}
        for problem in problems:
            groups.setdefault(key(problem), []).append(problem)
        return {value: ProblemSet(members) for value, members in groups.items()}

    def by_variant(self, variant: Variant) -> "ProblemSet":
        if self._variant_index is None:
            self._variant_index = self._partition(self._problems, lambda p: p.variant)
        subset = self._variant_index.get(variant)
        if subset is None:
            subset = self._variant_index[variant] = ProblemSet(())
        return subset

    def by_category(self, category: Category) -> "ProblemSet":
        if self._category_index is None:
            self._category_index = self._partition(self._problems, lambda p: p.category)
        subset = self._category_index.get(category)
        if subset is None:
            subset = self._category_index[category] = ProblemSet(())
        return subset

    def by_application(self, application: str) -> "ProblemSet":
        return self.filter(lambda p: p.application == application)

    def originals(self) -> "ProblemSet":
        return self.by_variant(Variant.ORIGINAL)

    def categories(self) -> list[Category]:
        return sorted({p.category for p in self._problems}, key=lambda c: c.value)

    # -- serialisation ----------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        return [p.to_dict() for p in self._problems]

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, Any]]) -> "ProblemSet":
        return cls(Problem.from_dict(row) for row in rows)
