"""Chaos scenarios: scripted faults against the whole fleet stack.

Each test scripts failure through a seeded :class:`FaultPlan` and asserts
the fleet's contractual response:

* a store killed and restarted mid-run replays its journal and the run
  completes with correct results;
* a worker whose heartbeat freezes while a job grinds on is reaped
  exactly once;
* a poison job (kills every worker that executes it) is quarantined by
  the strike rule — or abandoned after two lease expiries — and the run
  still terminates, with the loss surfacing as degraded slots;
* a corrupt frame tears down only the connection that sent it;
* the acceptance scenario: a real evaluation under store restart plus a
  poison problem terminates with deterministic error-marked records and
  a correct coverage stat, every healthy record bit-identical to serial.
"""

from __future__ import annotations

import dataclasses
import json
import math
import subprocess
import sys
from pathlib import Path

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.fleet import (
    FleetExecutor,
    RemoteStore,
    StoreServer,
)
from repro.pipeline.executors import DegradedResult
from repro.utils.faults import FaultInjector, FaultPlan, FaultSpec

MODEL = "gpt-3.5"

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_worker(address, *, worker_id, plan=None, heartbeat="0.25"):
    command = [
        sys.executable,
        "-m",
        "repro.evalcluster.fleet",
        "worker",
        "--connect",
        f"{address[0]}:{address[1]}",
        "--worker-id",
        worker_id,
        "--heartbeat",
        heartbeat,
        "--claim-timeout",
        "0.1",
    ]
    if plan is not None:
        command += ["--fault-plan", plan.to_json()]
    return subprocess.Popen(command, env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"})


def _events(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestStoreRestart:
    def test_store_killed_and_restarted_mid_run_completes_from_journal(self, tmp_path):
        """An injected ``restart`` fault crashes the self-hosted store at a
        scripted sync tick; the replacement replays the journal and every
        client reconnects — the map's results must be unaffected."""

        events_path = tmp_path / "events.jsonl"
        plan = FaultPlan([FaultSpec(site="coordinator.sync", kind="restart", after=5)], seed=3)
        with FleetExecutor(
            num_workers=2,
            lease_seconds=2.0,
            poll_seconds=0.05,
            journal=tmp_path / "store.journal",
            fault_plan=plan,
            event_log=events_path,
        ) as executor:
            values = list(range(40))
            assert executor.map(math.factorial, values) == [math.factorial(v) for v in values]
        names = [event["event"] for event in _events(events_path)]
        restarts = [event for event in _events(events_path) if event["event"] == "restart"]
        assert "fault" in names  # the injected fault itself is in the stream
        assert len(restarts) == 1
        assert restarts[0]["replayed"] > 0  # the new store really replayed

    def test_restart_without_a_journal_is_skipped_not_fatal(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        plan = FaultPlan([FaultSpec(site="coordinator.sync", kind="restart", after=2)])
        with FleetExecutor(
            num_workers=1,
            lease_seconds=5.0,
            poll_seconds=0.05,
            fault_plan=plan,
            event_log=events_path,
        ) as executor:
            assert executor.map(math.factorial, list(range(12))) == [
                math.factorial(v) for v in range(12)
            ]
        names = [event["event"] for event in _events(events_path)]
        assert "restart-skipped" in names
        assert "restart" not in names


class TestFrozenHeartbeat:
    def test_frozen_heartbeat_worker_is_reaped_exactly_once(self):
        """A worker that stops beating while its job grinds on looks dead;
        the lease must expire and the job be re-enqueued exactly once."""

        with StoreServer() as server:
            server.start()
            # The chaotic worker never beats, and its first execution
            # outlives the lease; every later execution is fast, so only
            # that one job is ever reaped.
            plan = FaultPlan(
                [
                    FaultSpec(site="worker.heartbeat", kind="freeze", times=0),
                    FaultSpec(site="worker.execute", kind="delay", seconds=3.0),
                ]
            )
            workers = [
                _spawn_worker(server.address, worker_id="healthy"),
                _spawn_worker(server.address, worker_id="frozen", plan=plan),
            ]
            try:
                with FleetExecutor(
                    address=server.address, lease_seconds=1.2, poll_seconds=0.05, chunk_size=1
                ) as executor:
                    values = list(range(24))
                    results = executor.map(math.factorial, values)
                    assert results == [math.factorial(v) for v in values]
                    stats = executor.stats()
                assert stats.requeued == 1, stats.describe()
                assert stats.abandoned == 0
                assert stats.completed == len(values)
                # The frozen worker never produced a visible heartbeat.
                assert "frozen" not in stats.heartbeat_ages
            finally:
                for worker in workers:
                    worker.terminate()
                    worker.wait(timeout=10)


class TestPoisonJobs:
    def test_poison_job_is_quarantined_by_the_strike_rule(self, tmp_path):
        """With ``max_strikes=1`` a job that killed one worker is never
        executed again: the next toucher writes the quarantine row and the
        run completes with a degraded slot in exactly that position."""

        events_path = tmp_path / "events.jsonl"
        # chunk_size=1 makes job ids positional: task 1 rides job ...-00000002.
        plan = FaultPlan(
            [FaultSpec(site="worker.execute", kind="kill", match="-00000002", times=0)]
        )
        with FleetExecutor(
            num_workers=2,
            lease_seconds=1.2,
            poll_seconds=0.05,
            chunk_size=1,
            fault_plan=plan,
            max_strikes=1,
            respawn_limit=3,
            event_log=events_path,
        ) as executor:
            values = list(range(10))
            results = executor.map(math.factorial, values)
            stats = executor.stats()
        expected = [math.factorial(v) for v in values]
        expected[1] = DegradedResult(reason="quarantined after 1 strikes")
        assert results == expected
        assert stats.requeued == 1, stats.describe()
        assert stats.abandoned == 0
        names = [event["event"] for event in _events(events_path)]
        assert "respawn" in names  # the killed worker was replaced

    def test_poison_job_is_abandoned_after_two_lease_expiries(self):
        """With the default strike budget the master's re-enqueue-once rule
        wins: two kills, two expiries, one deterministic degraded slot —
        and the run still terminates."""

        plan = FaultPlan(
            [FaultSpec(site="worker.execute", kind="kill", match="-00000002", times=0)]
        )
        with FleetExecutor(
            num_workers=2,
            lease_seconds=1.2,
            poll_seconds=0.05,
            chunk_size=1,
            fault_plan=plan,
            respawn_limit=3,
        ) as executor:
            values = list(range(10))
            results = executor.map(math.factorial, values)
            stats = executor.stats()
        expected = [math.factorial(v) for v in values]
        expected[1] = DegradedResult(reason="lease expired twice; job abandoned")
        assert results == expected
        assert stats.requeued == 1, stats.describe()
        assert stats.abandoned == 1


class TestCorruptFrames:
    def test_corrupt_frame_drops_only_the_sending_connection(self):
        with StoreServer() as server:
            server.start()
            plan = FaultPlan([FaultSpec(site="remote.call", kind="corrupt", after=2)])
            chaotic = RemoteStore(
                server.address,
                reconnect_attempts=4,
                reconnect_delay=0.05,
                injector=FaultInjector(plan),
            )
            bystander = RemoteStore(server.address)
            try:
                bystander.set("before", "ok")
                chaotic.set("a", 1)  # occurrence 1: clean
                chaotic.set("b", 2)  # occurrence 2: corrupt header, then retried
                assert [f["kind"] for f in chaotic.injector.fired] == ["corrupt"]
                # The chaotic client recovered on a fresh connection...
                assert chaotic.get("a") == 1
                assert chaotic.get("b") == 2
                # ...and the bystander's connection never noticed.
                assert bystander.ping() == "pong"
                assert bystander.get("before") == "ok"
            finally:
                chaotic.close()
                bystander.close()


class TestAcceptance:
    def test_chaotic_evaluation_terminates_with_deterministic_degradation(
        self, small_dataset, tmp_path
    ):
        """The PR's acceptance scenario: a seeded plan restarts the store
        once and poisons one problem (killing every worker that scores
        it).  The evaluation must terminate, replay from the journal,
        degrade exactly the poison record (error set, scores zeroed,
        excluded from means), report coverage, and keep every healthy
        record bit-identical to the serial backend."""

        problems = list(small_dataset)[:12]
        poison = problems[4].problem_id
        serial = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7)).evaluate_model(
            MODEL, problems=problems
        )

        events_path = tmp_path / "events.jsonl"
        plan = FaultPlan(
            [
                FaultSpec(site="coordinator.sync", kind="restart", after=6),
                FaultSpec(site="worker.execute", kind="kill", match=poison, times=0),
            ],
            seed=11,
        )
        executor = FleetExecutor(
            num_workers=2,
            lease_seconds=1.2,
            poll_seconds=0.05,
            chunk_size=1,
            journal=tmp_path / "store.journal",
            fault_plan=plan,
            respawn_limit=4,
            event_log=events_path,
        )
        try:
            from repro.llm.interface import GenerationRequest
            from repro.llm.registry import calibrate_models, get_model
            from repro.pipeline import EvaluationPipeline
            from repro.scoring.compiled import ReferenceStore

            model = calibrate_models([get_model(MODEL, seed=7)], small_dataset)[0]
            pipeline = EvaluationPipeline(
                model, executor=executor, store=ReferenceStore(), batch_size=6
            )
            requests = [
                GenerationRequest(problem=problem, shots=0, sample_index=0)
                for problem in problems
            ]
            evaluation = pipeline.run(requests)
        finally:
            executor.close()

        by_problem = {record.problem_id: record for record in evaluation.records}
        degraded = by_problem[poison]
        assert degraded.error.startswith("degraded: ")
        assert degraded.error in {
            "degraded: lease expired twice; job abandoned",
            "degraded: quarantined after 2 strikes",
        }
        assert degraded.scores.as_dict() == {name: 0.0 for name in degraded.scores.as_dict()}
        assert degraded.scores.failure_message == degraded.error.removeprefix("degraded: ")
        # Every healthy record is bit-identical to the serial backend.
        serial_by_problem = {record.problem_id: record for record in serial.records}
        for problem_id, record in by_problem.items():
            if problem_id != poison:
                assert record == serial_by_problem[problem_id]
        # Coverage counts the loss; the means exclude it.
        assert evaluation.coverage == (len(problems) - 1) / len(problems)
        healthy = [r for r in serial.records if r.problem_id != poison]
        assert evaluation.mean_scores() == serial.mean_scores(healthy)
        # The event stream tells the whole story.
        names = {event["event"] for event in _events(events_path)}
        assert {"fault", "restart", "requeue", "respawn"} <= names

    def test_offloaded_generation_kill_degrades_into_error_marked_records(
        self, small_dataset, tmp_path
    ):
        """Chaos at the ``worker.generate`` site honours the degradation
        contract: a poison problem that kills every worker generating it
        is quarantined into an error-marked zero record, while every
        healthy record — generated *on* the fleet — stays bit-identical
        to the serial parent-generation run."""

        from repro.llm.interface import GenerationRequest
        from repro.llm.registry import calibrate_models, get_model
        from repro.llm.remote import ModelSpec
        from repro.pipeline import EvaluationPipeline
        from repro.scoring.compiled import ReferenceStore

        problems = list(small_dataset)[:10]
        poison = problems[3].problem_id
        serial = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7)).evaluate_model(
            MODEL, problems=problems
        )

        plan = FaultPlan(
            [FaultSpec(site="worker.generate", kind="kill", match=poison, times=0)],
            seed=23,
        )
        executor = FleetExecutor(
            num_workers=2,
            lease_seconds=1.2,
            poll_seconds=0.05,
            chunk_size=1,
            fault_plan=plan,
            respawn_limit=4,
            event_log=tmp_path / "events.jsonl",
        )
        try:
            model = calibrate_models([get_model(MODEL, seed=7)], small_dataset)[0]
            pipeline = EvaluationPipeline(
                model,
                model_spec=ModelSpec.of(model),
                executor=executor,
                store=ReferenceStore(),
                batch_size=5,
            )
            requests = [
                GenerationRequest(problem=problem, shots=0, sample_index=0)
                for problem in problems
            ]
            evaluation = pipeline.run(requests)
        finally:
            executor.close()

        by_problem = {record.problem_id: record for record in evaluation.records}
        degraded = by_problem[poison]
        assert degraded.error.startswith("degraded: ")
        assert degraded.scores.as_dict() == {name: 0.0 for name in degraded.scores.as_dict()}
        assert degraded.scores.failure_message == degraded.error.removeprefix("degraded: ")
        serial_by_problem = {record.problem_id: record for record in serial.records}
        for problem_id, record in by_problem.items():
            if problem_id != poison:
                assert record == serial_by_problem[problem_id]
        assert evaluation.coverage == (len(problems) - 1) / len(problems)

    def test_leaderboard_shows_coverage_for_a_degraded_run(self, small_dataset):
        from repro.core.benchmark import BenchmarkResult
        from repro.core.report import format_leaderboard

        benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
        evaluation = benchmark.evaluate_model(MODEL, problems=list(small_dataset)[:6])
        result = BenchmarkResult()
        result.evaluations[MODEL] = evaluation
        clean = format_leaderboard(result)
        assert "coverage" not in clean  # a clean run's leaderboard is unchanged
        # Degrade one record and the column appears automatically.
        evaluation.records[0] = dataclasses.replace(
            evaluation.records[0], error="degraded: lease expired twice; job abandoned"
        )
        rendered = format_leaderboard(result)
        assert "coverage" in rendered
        assert "0.83" in rendered  # 5 of 6 records scored
