"""Docker image caches: worker-local layers plus the shared pull-through cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.kubesim.images import image_size_mb, normalize_image

__all__ = ["WorkerImageCache", "PullThroughCache", "PullPlan"]


@dataclass(frozen=True)
class PullPlan:
    """Where an image pull is served from and how many megabytes move where."""

    image: str
    internet_mb: float  # bytes that must cross the shared internet uplink
    lan_mb: float  # bytes served from the master's pull-through cache over the LAN
    cached_locally: bool  # already present on the worker: no transfer at all


@dataclass
class PullThroughCache:
    """The shared registry cache running on the master node.

    The first pull of an image anywhere in the cluster downloads it from the
    upstream registry (internet); every later pull by any worker is served
    from this cache over the local network.
    """

    enabled: bool = True
    _stored: set[str] = field(default_factory=set)
    internet_mb_total: float = 0.0
    lan_mb_total: float = 0.0

    def contains(self, image: str) -> bool:
        return normalize_image(image) in {normalize_image(i) for i in self._stored}

    def plan_pull(self, image: str) -> tuple[float, float]:
        """Return (internet_mb, lan_mb) for serving one pull of ``image``."""

        size = image_size_mb(image)
        if not self.enabled:
            return size, 0.0
        if self.contains(image):
            return 0.0, size
        self._stored.add(image)
        # Cache miss: the master downloads from the internet, then streams
        # the layers to the requesting worker over the LAN.
        return size, size


@dataclass
class WorkerImageCache:
    """The worker's local Docker layer cache (persists across problems)."""

    worker_id: str
    shared_cache: PullThroughCache
    _local: set[str] = field(default_factory=set)

    def preload(self, images: Iterable[str]) -> None:
        """Mark images as already present on the worker, free of charge.

        Models the base images a Minikube ISO ships with: they never hit
        the network or the shared cache, so preloading bypasses the pull
        accounting entirely.
        """

        for image in images:
            self._local.add(normalize_image(image))

    def pull(self, image: str) -> PullPlan:
        """Plan a pull of ``image`` for this worker."""

        key = normalize_image(image)
        if key in self._local:
            return PullPlan(image=image, internet_mb=0.0, lan_mb=0.0, cached_locally=True)
        internet_mb, lan_mb = self.shared_cache.plan_pull(image)
        self.shared_cache.internet_mb_total += internet_mb
        self.shared_cache.lan_mb_total += lan_mb
        self._local.add(key)
        return PullPlan(image=image, internet_mb=internet_mb, lan_mb=lan_mb, cached_locally=False)

    def cached_images(self) -> int:
        return len(self._local)
