"""DaemonSet problem templates (Table 2 column "daemonset")."""

from __future__ import annotations

from repro.dataset.catalog.common import (
    AGENT_IMAGES,
    CPU_REQUESTS,
    MEMORY_REQUESTS,
    ProblemDraft,
    pick_app,
    pick_source,
)
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]


def _registry_proxy(rng: DeterministicRNG, index: int) -> ProblemDraft:
    """The kube-registry proxy sample from Appendix C.1, parameterised."""

    app, _ = pick_app(rng)
    label = f"kube-registry-{app}"
    host_port = rng.choice([5000, 5001, 6000, 7000])
    cpu = rng.choice(CPU_REQUESTS)
    memory = rng.choice(MEMORY_REQUESTS)
    registry_host = f"kube-registry-{app}.svc.cluster.local"
    question = (
        f"Create a DaemonSet configuration. This DaemonSet should run the latest nginx image labeled "
        f"as \"app: {label}\" and expose a registry service on port 80 (with hostPort {host_port}). "
        f"The environment variables REGISTRY_HOST and REGISTRY_PORT should be set to "
        f"\"{registry_host}\" and \"{host_port}\" respectively. Ensure the CPU limit is set to {cpu} "
        f"and the memory limit is set to {memory}."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-{app}  # *
spec:
  selector:
    matchLabels:
      app: {label}
  template:
    metadata:
      labels:
        app: {label}
    spec:
      containers:
      - name: kube-registry-proxy  # *
        image: nginx:latest
        resources:
          limits:
            cpu: {cpu}
            memory: {memory}
        env:
        - name: REGISTRY_HOST
          value: {registry_host}
        - name: REGISTRY_PORT
          value: "{host_port}"
        ports:
        - name: registry  # *
          containerPort: 80
          hostPort: {host_port}
"""
    selector = {"app": label}
    steps = [
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", selector=selector, namespace="default"),
        S.AssertHostPortReachable(host_port, selector=selector, namespace="default"),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].env[*].name}", contains="REGISTRY_HOST", selector=selector, namespace="default"),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].env[*].name}", contains="REGISTRY_PORT", selector=selector, namespace="default"),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].resources.limits.cpu}", expected=cpu, selector=selector, namespace="default"),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].resources.limits.memory}", expected=memory, selector=selector, namespace="default"),
    ]
    return ProblemDraft(
        slug=f"daemonset-registry-proxy-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DaemonSet",
        nodes=2,
        extra_difficulty=0.15,
    )


def _log_collector(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-log-agent"
    image = "fluent/fluentd:v1.16"
    question = (
        f"Write a YAML for a DaemonSet named \"{name}\" in the {namespace} namespace that runs "
        f"{image} on every node with the label app: {name}. Mount the host directory /var/log into "
        f"the container at /var/log using a hostPath volume named varlog."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: fluentd  # *
        image: {image}
        volumeMounts:
        - name: varlog
          mountPath: /var/log
      volumes:
      - name: varlog
        hostPath:
          path: /var/log
"""
    selector = {"app": name}
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("DaemonSet", "available", name=name, namespace=namespace),
        S.AssertJsonPath("DaemonSet", "{.spec.template.spec.volumes[0].hostPath.path}", expected="/var/log", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].volumeMounts[0].mountPath}", expected="/var/log", selector=selector, namespace=namespace),
        S.AssertPodCount(selector=selector, min_count=2, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"daemonset-log-collector-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DaemonSet",
        nodes=2,
        extra_difficulty=0.1,
    )


def _node_exporter(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-node-exporter"
    host_port = rng.choice([9100, 9101, 9110, 9200])
    question = (
        f"Create a DaemonSet named \"{name}\" in namespace {namespace} that runs "
        f"prom/prometheus:v2.47.0 on every node, labeled app: {name}, exposing container port 9100 "
        f"with hostPort {host_port}."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: exporter  # *
        image: prom/prometheus:v2.47.0
        ports:
        - containerPort: 9100
          hostPort: {host_port}
"""
    selector = {"app": name}
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("DaemonSet", "available", name=name, namespace=namespace),
        S.AssertHostPortReachable(host_port, selector=selector, namespace=namespace),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].ports[0].containerPort}", expected="9100", selector=selector, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"daemonset-node-exporter-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DaemonSet",
        nodes=3,
    )


def _deployment_to_daemonset(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    image = rng.choice(AGENT_IMAGES)
    name = f"{app}-agent"
    context = f"""apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
  namespace: {namespace}
spec:
  replicas: 2
  selector:
    matchLabels:
      app: {app}
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: agent
        image: {image}
"""
    question = (
        f"Given the following Deployment, convert it into a DaemonSet with the same name, namespace, "
        f"labels and container, so that the {image} agent runs on every node instead of as 2 replicas. "
        f"Provide the entire YAML."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    matchLabels:
      app: {app}
  template:
    metadata:
      labels:
        app: {app}
    spec:
      containers:
      - name: agent  # *
        image: {image}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("DaemonSet", "available", name=name, namespace=namespace),
        S.AssertJsonPath("DaemonSet", "{.spec.template.spec.containers[0].image}", expected=image, name=name, namespace=namespace),
        S.AssertPodCount(selector={"app": app}, min_count=2, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"daemonset-from-deployment-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        yaml_context=context,
        source="stackoverflow",
        primary_kind="DaemonSet",
        nodes=2,
    )


def _monitoring_agent_env(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, namespace = pick_app(rng)
    name = f"{app}-monitor"
    endpoint = f"collector.{namespace}.svc.cluster.local:4317"
    cpu = rng.choice(CPU_REQUESTS)
    question = (
        f"Write a DaemonSet YAML named \"{name}\" for namespace {namespace}. It runs "
        f"grafana/grafana:10.1.0 with label app: {name}, sets the environment variable "
        f"OTEL_EXPORTER_OTLP_ENDPOINT to \"{endpoint}\", and requests {cpu} of CPU."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: monitor  # *
        image: grafana/grafana:10.1.0
        env:
        - name: OTEL_EXPORTER_OTLP_ENDPOINT
          value: {endpoint}
        resources:
          requests:
            cpu: {cpu}
"""
    selector = {"app": name}
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.WaitFor("DaemonSet", "available", name=name, namespace=namespace),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].env[0].value}", expected=endpoint, selector=selector, namespace=namespace),
        S.AssertJsonPath("Pod", "{.items[0].spec.containers[0].resources.requests.cpu}", expected=cpu, selector=selector, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"daemonset-monitoring-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DaemonSet",
        nodes=2,
    )


def _kube_system_daemonset(rng: DeterministicRNG, index: int) -> ProblemDraft:
    app, _ = pick_app(rng)
    name = f"{app}-proxy"
    image = rng.choice(["haproxy:2.8", "nginx:1.25", "traefik:v2.10"])
    question = (
        f"Create a DaemonSet named \"{name}\" in the kube-system namespace running {image} on every "
        f"node. Pods must carry the labels app: {name} and tier: node."
    )
    reference = f"""apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
  namespace: kube-system
spec:
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
        tier: node
    spec:
      containers:
      - name: proxy  # *
        image: {image}
"""
    selector = {"app": name, "tier": "node"}
    steps = [
        S.ApplyAnswer(),
        S.WaitFor("DaemonSet", "available", name=name, namespace="kube-system"),
        S.AssertJsonPath("Pod", "{.items[0].metadata.labels.tier}", expected="node", selector=selector, namespace="kube-system"),
        S.AssertPodCount(selector=selector, min_count=2, namespace="kube-system"),
    ]
    return ProblemDraft(
        slug=f"daemonset-kube-system-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DaemonSet",
        nodes=2,
    )


_TEMPLATES = [
    _registry_proxy,
    _log_collector,
    _node_exporter,
    _deployment_to_daemonset,
    _monitoring_agent_env,
    _kube_system_daemonset,
]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` daemonset problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("daemonset", index), index))
    return drafts
