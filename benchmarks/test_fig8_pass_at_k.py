"""Figure 8 — pass@k of GPT-4, GPT-3.5, PaLM-2 and Llama-2-70B with multi-sample generation.

Paper observations: 20-sample generation improves Llama-2-70B / PaLM-2 /
GPT-3.5 by roughly 30-40 %; the curves of different models do not cross,
but GPT-3.5 with a handful of samples reaches GPT-4's single-sample score,
making the cheaper model cost-effective.
"""

from __future__ import annotations

from benchmarks.common import multi_sample_evaluations
from repro.analysis.pass_at_k import pass_at_k_curves

KS = (1, 2, 4, 6, 8, 12, 16)
MAX_K = {"gpt-4": 6}


def _curves():
    evaluations = multi_sample_evaluations()
    ordered = [evaluations[name] for name in ("gpt-4", "gpt-3.5", "palm-2-bison", "llama-2-70b-chat")]
    return pass_at_k_curves(ordered, ks=KS, max_k_per_model=MAX_K)


def test_fig8_pass_at_k(benchmark):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    by_model = {curve.model_name: curve for curve in curves}

    print("\nFigure 8 (measured pass@k):")
    for curve in curves:
        points = "  ".join(f"k={k}:{p}" for k, p in zip(curve.ks, curve.passed))
        print(f"  {curve.model_name:<18} {points}")
        print(f"  {'':<18} normalized: " + "  ".join(f"{v:.2f}" for v in curve.normalized()))

    # GPT-4 was only sampled 6 times (API rate limit in the paper).
    assert max(by_model["gpt-4"].ks) == 6

    # pass@k is monotone non-decreasing for every model.
    for curve in curves:
        assert list(curve.passed) == sorted(curve.passed)

    # Multi-sample generation yields a remarkable gain for the three 16-sample models.
    for name in ("gpt-3.5", "palm-2-bison", "llama-2-70b-chat"):
        curve = by_model[name]
        assert curve.normalized()[-1] >= 1.15, name

    # The curves of the three 16-sample models do not cross: their ordering at
    # k=1 is unchanged at k=16.
    full_curve_models = ("gpt-3.5", "palm-2-bison", "llama-2-70b-chat")
    order_at_1 = sorted(full_curve_models, key=lambda name: by_model[name].passed[0], reverse=True)
    order_at_16 = sorted(full_curve_models, key=lambda name: by_model[name].passed[-1], reverse=True)
    assert order_at_1 == order_at_16

    # GPT-3.5 with a few samples reaches GPT-4's single-sample performance,
    # making the cheaper model cost-effective (30x price difference).
    assert max(by_model["gpt-3.5"].passed) >= by_model["gpt-4"].passed[0]
