"""The staged evaluation pipeline.

:class:`EvaluationPipeline` connects the typed stages of
:mod:`repro.pipeline.stages` and streams per-record results incrementally:
requests are processed in order, in batches, and every finished
:class:`~repro.pipeline.records.EvaluationRecord` is yielded (and
checkpointed) as soon as its batch clears the last stage.  A run that is
interrupted — or deliberately stopped after consuming part of the stream —
resumes from its :class:`~repro.pipeline.checkpoint.PipelineCheckpoint`
without re-querying the model or re-running unit tests for anything
already recorded.

``CloudEvalBenchmark.evaluate_model`` is a thin wrapper over this class;
using the pipeline directly buys streaming, checkpoint/resume and executor
selection without changing a single score.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.llm.interface import GenerationRequest, Model, QueryModule
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.executors import Executor, close_executor, resolve_executor
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.stages import (
    AggregateStage,
    Stage,
    StageContext,
    WorkItem,
    default_stages,
    offload_stages,
)
from repro.scoring.cache import ScoreCache
from repro.scoring.compiled import ReferenceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evalcluster.calibration import CalibrationStore
    from repro.llm.remote import ModelSpec

__all__ = ["EvaluationPipeline", "PreparedBatch"]

#: Records are streamed out (and checkpointed) in batches of this size.
DEFAULT_BATCH_SIZE = 32


@dataclass
class PreparedBatch:
    """A batch that has cleared the generation-side stages but not scoring.

    The pipeline's two wall-clock sinks are different resources — the
    generation-side stages wait on the model (I/O), the scoring-side
    stages burn CPU — and this split point is what lets the sharded
    scheduler run them concurrently: one thread prepares batch *k+1* while
    another finishes batch *k*.
    """

    requests: list[GenerationRequest]
    cached: dict[int, EvaluationRecord] = field(default_factory=dict)
    todo: list[int] = field(default_factory=list)
    items: list[WorkItem] = field(default_factory=list)


class EvaluationPipeline:
    """Evaluate one model's requests through the staged pipeline.

    Parameters
    ----------
    model:
        The model under evaluation (anything implementing the
        :class:`~repro.llm.interface.Model` protocol).
    stages:
        The per-item stage chain; defaults to the paper's
        prompt → generate → extract → score sequence.
    executor:
        Backend for parallelisable stage work: ``"serial"``, ``"thread"``,
        ``"cluster"`` or any :class:`~repro.pipeline.executors.Executor`.
    max_workers:
        Worker count handed to the thread/cluster executor and to the
        query module's request fan-out.
    store:
        Shared :class:`~repro.scoring.compiled.ReferenceStore`; benchmarks
        pass one store so references compile once across models.
    run_unit_tests:
        Forwarded to the score stage.
    score_cache:
        Optional :class:`~repro.scoring.cache.ScoreCache` layered above
        the score stage's in-run memo: content-addressed hits skip
        scoring entirely (resolved in this process, so process pools only
        see misses) and fresh cards are written back once per batch.
        Benchmarks and the multi-model scheduler pass one shared store so
        every model's repeat answers are absorbed by the same cache.
    checkpoint:
        Optional :class:`PipelineCheckpoint` enabling resume; pass the
        same checkpoint (or path) again to continue a partial run.
    batch_size:
        Streaming granularity of :meth:`run_iter` — smaller batches
        checkpoint more often, larger ones amortise stage overhead.
    model_spec:
        Optional :class:`~repro.llm.remote.ModelSpec` naming the same
        model: switches the default chain to generation *offload* — the
        whole generate→extract→score chain ships to the executor as
        picklable tasks (see :class:`~repro.pipeline.stages.FleetGenerationStage`),
        so a fleet backend generates and scores on its workers under the
        store's distributed rate limit.  Ignored when explicit ``stages``
        are passed.
    calibration:
        Optional :class:`~repro.evalcluster.calibration.CalibrationStore`:
        every freshly evaluated record's measured duration (generation +
        scoring seconds) is fed into it, closing the loop from real runs
        back to the cost model's per-problem predictions.  Records served
        from a checkpoint were observed when first computed and are not
        re-observed.
    """

    def __init__(
        self,
        model: Model,
        *,
        stages: Sequence[Stage] | None = None,
        executor: str | Executor = "serial",
        max_workers: int = 1,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        checkpoint: PipelineCheckpoint | str | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        rate_limit: float | None = None,
        generate_executor: str | Executor | None = None,
        lease_seconds: float | None = None,
        calibration: "CalibrationStore | None" = None,
        score_cache: ScoreCache | None = None,
        model_spec: "ModelSpec | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if model_spec is not None and model_spec.name != model.name:
            raise ValueError(
                f"model_spec names {model_spec.name!r} but the pipeline's model "
                f"is {model.name!r}"
            )
        self.model = model
        self.model_spec = model_spec
        self.query = QueryModule(model, max_workers=max(1, max_workers))
        if stages is not None:
            self.stages: list[Stage] = list(stages)
        elif model_spec is not None:
            # Generation offload: the whole generate→extract→score chain
            # ships to the executor as picklable GenerationTasks, built
            # from the spec instead of the live model.
            self.stages = offload_stages(
                model_spec, store=store, run_unit_tests=run_unit_tests
            )
        else:
            self.stages = default_stages(
                self.query,
                store=store,
                run_unit_tests=run_unit_tests,
                score_cache=score_cache,
            )
        self.aggregate = AggregateStage()
        # An executor resolved here from a spec string is owned by (and torn
        # down with) this pipeline; an instance passed in is the caller's.
        self._owns_executor = isinstance(executor, str)
        self._owns_generate_executor = isinstance(generate_executor, str)
        self.context = StageContext(
            executor=resolve_executor(executor, max_workers, rate_limit, lease_seconds),
            generate_executor=(
                resolve_executor(generate_executor, max_workers, rate_limit, lease_seconds)
                if generate_executor is not None
                else None
            ),
        )
        self.checkpoint = (
            PipelineCheckpoint(checkpoint) if isinstance(checkpoint, str) else checkpoint
        )
        self.batch_size = batch_size
        self.calibration = calibration

    # ------------------------------------------------------------------
    # Streaming evaluation
    # ------------------------------------------------------------------
    def run_iter(self, requests: Iterable[GenerationRequest]) -> Iterator[EvaluationRecord]:
        """Stream finished records in request order, batch by batch.

        Requests whose ``(model, problem, shots, sample)`` identity is
        already in the checkpoint are served from it without touching the
        model or the scorer; everything else flows through the stages and
        is checkpointed the moment its record exists.
        """

        batch: list[GenerationRequest] = []
        for request in requests:
            batch.append(request)
            if len(batch) >= self.batch_size:
                yield from self._run_batch(batch)
                batch = []
        if batch:
            yield from self._run_batch(batch)

    def _run_batch(self, requests: list[GenerationRequest]) -> Iterator[EvaluationRecord]:
        yield from self.finish_batch(self.prepare_batch(requests))

    # -- the two halves of a batch (the sharded scheduler's overlap seam) --
    def _front_back_stages(self) -> tuple[list[Stage], list[Stage]]:
        """Split the chain at the score stage: I/O-bound front, CPU-bound back."""

        for position, stage in enumerate(self.stages):
            if getattr(stage, "name", "") == "score":
                return list(self.stages[:position]), list(self.stages[position:])
        return list(self.stages), []

    def prepare_batch(self, requests: list[GenerationRequest]) -> PreparedBatch:
        """Serve what the checkpoint has and run the generation-side stages
        (everything before scoring) for the rest."""

        prepared = PreparedBatch(requests=list(requests))
        for index, request in enumerate(prepared.requests):
            record = self._cached_record(request)
            if record is not None:
                prepared.cached[index] = record
            else:
                prepared.todo.append(index)

        if prepared.todo:
            front, _ = self._front_back_stages()
            items = [WorkItem(request=prepared.requests[index]) for index in prepared.todo]
            start = time.perf_counter()
            for stage in front:
                items = stage.process(items, self.context)
            # The generation-side stages run (and with the async backend,
            # overlap) as one batch, so the batch's wall-clock is shared
            # evenly across its items — the per-request view of a cost the
            # endpoint only exposes per batch.  An item that already
            # carries a measurement (the fleet offload stage times each
            # generation where it ran) keeps its own truth.
            elapsed = (time.perf_counter() - start) / max(1, len(items))
            for item in items:
                if item.generate_seconds == 0.0:
                    item.generate_seconds = elapsed
            prepared.items = items
        return prepared

    def finish_batch(self, prepared: PreparedBatch) -> Iterator[EvaluationRecord]:
        """Run the scoring-side stages, checkpoint, and yield in request order."""

        fresh: dict[int, EvaluationRecord] = {}
        if prepared.items:
            _, back = self._front_back_stages()
            items = prepared.items
            for stage in back:
                items = stage.process(items, self.context)
            for index, item in zip(prepared.todo, items):
                fresh[index] = item.to_record()

        # Checkpoint the whole batch before yielding anything: the work is
        # done, and it must survive even when the consumer abandons the
        # stream mid-batch.  Failed generations are NOT checkpointed — a
        # captured endpoint error is transient, and a resume must retry it
        # rather than serve the zero-score record forever.
        finished = [record for record in fresh.values() if not record.error]
        if self.checkpoint is not None:
            self.checkpoint.put_batch(finished)
        if self.calibration is not None and finished:
            # Close the measure-then-model loop: every fresh, successful
            # record contributes its measured duration to the store the
            # calibrated cost model predicts from (one durable append per
            # batch, like the checkpoint).
            # The model name rides along so a per_model store can fold the
            # scoped EWMA too; single-key stores ignore it.
            self.calibration.observe_batch(
                (record.problem_id, record.variant, record.measured_seconds, record.model_name)
                for record in finished
            )
        for index in range(len(prepared.requests)):
            yield prepared.cached[index] if index in prepared.cached else fresh[index]

    def _cached_record(self, request: GenerationRequest) -> EvaluationRecord | None:
        if self.checkpoint is None:
            return None
        key = (self.model.name, request.problem.problem_id, request.shots, request.sample_index)
        return self.checkpoint.get(key)

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def run(self, requests: Iterable[GenerationRequest]) -> ModelEvaluation:
        """Evaluate every request and aggregate into a :class:`ModelEvaluation`."""

        records = list(self.run_iter(requests))
        return self.aggregate.finalize(self.model.name, records)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release pooled resources: the query module's thread pool and —
        when this pipeline resolved it from a spec string — the executor's
        pool.  The pipeline stays usable; pools are rebuilt on demand."""

        self.query.close()
        if self._owns_executor:
            close_executor(self.context.executor)
        if self._owns_generate_executor and self.context.generate_executor is not None:
            close_executor(self.context.generate_executor)

    def __enter__(self) -> "EvaluationPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
