"""Tests for Istio CRD validation and query helpers."""

from __future__ import annotations

import pytest

import repro.istiosim  # noqa: F401 - registers validators
from repro.istiosim import (
    destination_rule_lb_policy,
    destination_rule_subsets,
    gateway_servers,
    virtual_service_destinations,
)
from repro.kubesim import Cluster
from repro.kubesim.errors import ValidationError

DESTINATION_RULE = {
    "apiVersion": "networking.istio.io/v1beta1",
    "kind": "DestinationRule",
    "metadata": {"name": "ratings", "namespace": "default"},
    "spec": {
        "host": "ratings",
        "trafficPolicy": {"loadBalancer": {"simple": "LEAST_REQUEST"}},
        "subsets": [
            {"name": "testversion", "labels": {"version": "v3"}, "trafficPolicy": {"loadBalancer": {"simple": "ROUND_ROBIN"}}}
        ],
    },
}


def test_destination_rule_applies_and_queries():
    cluster = Cluster()
    resource = cluster.apply(DESTINATION_RULE)
    assert destination_rule_lb_policy(resource) == "LEAST_REQUEST"
    assert destination_rule_lb_policy(resource, subset="testversion") == "ROUND_ROBIN"
    assert destination_rule_subsets(resource) == {"testversion": {"version": "v3"}}


def test_destination_rule_requires_host():
    broken = {**DESTINATION_RULE, "spec": {"trafficPolicy": {}}}
    with pytest.raises(ValidationError, match="host"):
        Cluster().apply(broken)


def test_destination_rule_rejects_unknown_lb_policy():
    broken = {
        **DESTINATION_RULE,
        "spec": {"host": "x", "trafficPolicy": {"loadBalancer": {"simple": "FASTEST_EVER"}}},
    }
    with pytest.raises(ValidationError, match="policy"):
        Cluster().apply(broken)


def test_destination_rule_subset_requires_labels():
    broken = {
        **DESTINATION_RULE,
        "spec": {"host": "x", "subsets": [{"name": "v1"}]},
    }
    with pytest.raises(ValidationError, match="labels"):
        Cluster().apply(broken)


def test_virtual_service_destinations_query():
    manifest = {
        "apiVersion": "networking.istio.io/v1beta1",
        "kind": "VirtualService",
        "metadata": {"name": "reviews", "namespace": "default"},
        "spec": {
            "hosts": ["reviews"],
            "http": [{"route": [{"destination": {"host": "reviews", "subset": "v2"}}]}],
        },
    }
    resource = Cluster().apply(manifest)
    assert virtual_service_destinations(resource) == [("reviews", "v2")]


def test_virtual_service_requires_routes():
    broken = {
        "apiVersion": "networking.istio.io/v1beta1",
        "kind": "VirtualService",
        "metadata": {"name": "broken"},
        "spec": {"hosts": ["x"]},
    }
    with pytest.raises(ValidationError, match="routes"):
        Cluster().apply(broken)


def test_gateway_servers_query_and_validation():
    manifest = {
        "apiVersion": "networking.istio.io/v1beta1",
        "kind": "Gateway",
        "metadata": {"name": "gw", "namespace": "default"},
        "spec": {
            "selector": {"istio": "ingressgateway"},
            "servers": [{"port": {"number": 80, "name": "http", "protocol": "HTTP"}, "hosts": ["*"]}],
        },
    }
    resource = Cluster().apply(manifest)
    servers = gateway_servers(resource)
    assert servers[0]["port"]["number"] == 80

    broken = {**manifest, "spec": {"selector": {"istio": "ingressgateway"}, "servers": [{"hosts": ["*"]}]}}
    with pytest.raises(ValidationError, match="port"):
        Cluster().apply(broken)


def test_gateway_requires_selector():
    broken = {
        "apiVersion": "networking.istio.io/v1beta1",
        "kind": "Gateway",
        "metadata": {"name": "gw"},
        "spec": {"servers": [{"port": {"number": 80, "protocol": "HTTP"}, "hosts": ["*"]}]},
    }
    with pytest.raises(ValidationError, match="selector"):
        Cluster().apply(broken)


def test_peer_authentication_mtls_mode_validated():
    good = {
        "apiVersion": "security.istio.io/v1beta1",
        "kind": "PeerAuthentication",
        "metadata": {"name": "mtls"},
        "spec": {"mtls": {"mode": "STRICT"}},
    }
    Cluster().apply(good)
    bad = {**good, "spec": {"mtls": {"mode": "MAYBE"}}}
    with pytest.raises(ValidationError, match="mTLS"):
        Cluster().apply(bad)


def test_wrong_istio_api_version_rejected():
    broken = {**DESTINATION_RULE, "apiVersion": "networking.istio.io/v1"}
    with pytest.raises(ValidationError, match="apiVersion"):
        Cluster().apply(broken)
