"""The async query path: AsyncModel, query_batch_async, rate limiting,
the remote-endpoint adapter, and the persistent request pool."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.llm.interface import AsyncModel, GenerationRequest, QueryModule
from repro.llm.registry import get_model
from repro.llm.remote import RemoteEndpointModel
from repro.utils.ratelimit import TokenBucket


def _requests(problems, samples=1):
    return [
        GenerationRequest(problem=p, sample_index=s) for p in problems for s in range(samples)
    ]


# ---------------------------------------------------------------------------
# query_batch_async
# ---------------------------------------------------------------------------

def test_async_batch_matches_sync_batch(small_original_problems):
    problems = list(small_original_problems)[:8]
    module = QueryModule(get_model("gpt-4"), max_workers=4)
    sync_results = module.query_batch(_requests(problems))
    async_results = asyncio.run(module.query_batch_async(_requests(problems)))
    assert async_results == sync_results


def test_async_batch_uses_async_model_and_preserves_order(small_original_problems):
    problems = list(small_original_problems)[:6]
    remote = RemoteEndpointModel(get_model("gpt-4"), latency_seconds=0.01)
    assert isinstance(remote, AsyncModel)
    module = QueryModule(remote, max_workers=4)

    start = time.perf_counter()
    results = asyncio.run(module.query_batch_async(_requests(problems)))
    elapsed = time.perf_counter() - start

    plain = QueryModule(get_model("gpt-4")).query_batch(_requests(problems))
    assert [r.response for r in results] == [r.response for r in plain]
    # 6 requests x 10ms at concurrency 4 must beat the sequential 60ms.
    assert elapsed < 6 * 0.01


def test_async_batch_captures_per_request_errors(small_original_problems):
    problems = list(small_original_problems)[:4]
    flaky_id = problems[2].problem_id

    class FlakyAsync:
        name = "flaky"

        def generate(self, problem, shots=0, sample_index=0):
            return "spec: ok"

        async def generate_async(self, problem, shots=0, sample_index=0):
            if problem.problem_id == flaky_id:
                raise ConnectionError("endpoint reset")
            return "spec: ok"

    results = asyncio.run(QueryModule(FlakyAsync(), max_workers=4).query_batch_async(_requests(problems)))
    assert [bool(r.error) for r in results] == [False, False, True, False]
    assert "ConnectionError" in results[2].error
    assert results[2].response == ""


def test_async_batch_rate_limiter_accounts_throttle_without_sleeping(small_original_problems):
    problems = list(small_original_problems)[:10]
    module = QueryModule(get_model("gpt-4"), max_workers=8)
    limiter = TokenBucket(rate=100.0, burst=1, virtual_clock=True)

    start = time.perf_counter()
    results = asyncio.run(module.query_batch_async(_requests(problems), limiter=limiter))
    elapsed = time.perf_counter() - start

    assert len(results) == 10
    assert limiter.acquired == 10
    # 10 requests at 100 req/s from a burst-1 bucket: 9 waits of 10ms each,
    # accounted on the virtual clock rather than slept.
    assert limiter.waited_seconds == pytest.approx(0.09, rel=1e-6)
    assert elapsed < 0.09  # fast-forwarded, not paid


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

def test_token_bucket_deterministic_waits():
    bucket = TokenBucket(rate=2.0, burst=1, virtual_clock=True)
    waits = [bucket.try_acquire() for _ in range(4)]
    assert waits == [0.0, pytest.approx(0.5), pytest.approx(0.5), pytest.approx(0.5)]

    again = TokenBucket(rate=2.0, burst=1, virtual_clock=True)
    assert [again.try_acquire() for _ in range(4)] == waits


def test_token_bucket_burst_capacity():
    bucket = TokenBucket(rate=1.0, burst=3, virtual_clock=True)
    assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    assert bucket.try_acquire() == pytest.approx(1.0)


def test_token_bucket_wall_clock_sleeps():
    bucket = TokenBucket(rate=50.0, burst=1, virtual_clock=False)

    async def drain():
        for _ in range(3):
            await bucket.acquire_async()

    start = time.perf_counter()
    asyncio.run(drain())
    # Two throttled acquisitions at 50 req/s => ~40ms of real sleep.
    assert time.perf_counter() - start >= 0.03


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0)


# ---------------------------------------------------------------------------
# RemoteEndpointModel
# ---------------------------------------------------------------------------

def test_remote_endpoint_answers_identical_to_inner(small_original_problems):
    problems = list(small_original_problems)[:5]
    inner = get_model("gpt-3.5")
    remote = RemoteEndpointModel(get_model("gpt-3.5"), latency_seconds=0.0)
    for problem in problems:
        assert remote.generate(problem) == inner.generate(problem)
    assert remote.name == inner.name


def test_remote_endpoint_latency_is_deterministic(small_original_problems):
    problem = list(small_original_problems)[0]
    a = RemoteEndpointModel(get_model("gpt-4"), latency_seconds=0.05, jitter_seconds=0.02, seed=3)
    b = RemoteEndpointModel(get_model("gpt-4"), latency_seconds=0.05, jitter_seconds=0.02, seed=3)
    assert a.request_latency(problem, 0) == b.request_latency(problem, 0)
    assert 0.03 <= a.request_latency(problem, 0) <= 0.07
    assert a.request_latency(problem, 0) != a.request_latency(problem, 1)


# ---------------------------------------------------------------------------
# Persistent pool lifecycle
# ---------------------------------------------------------------------------

def test_query_module_pool_is_persistent_across_batches(small_original_problems):
    problems = list(small_original_problems)[:4]
    module = QueryModule(get_model("gpt-4"), max_workers=2)
    module.query_batch(_requests(problems))
    pool_first = module._pool.raw
    module.query_batch(_requests(problems))
    assert module._pool.raw is pool_first  # not rebuilt per call

    module.close()
    assert module._pool.raw is None
    # Usable after close: a fresh pool is built lazily.
    assert len(module.query_batch(_requests(problems))) == 4


def test_query_module_context_manager_closes_pool(small_original_problems):
    problems = list(small_original_problems)[:3]
    with QueryModule(get_model("gpt-4"), max_workers=2) as module:
        module.query_batch(_requests(problems))
        assert module._pool.raw is not None
    assert module._pool.raw is None
