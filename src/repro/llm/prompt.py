"""Prompt construction (Appendix B of the paper).

Every problem is prefixed with the same prompt template instructing the
model to answer with plain YAML only.  Few-shot prompting (§4.3) prepends
up to three question/answer example pairs.
"""

from __future__ import annotations

from repro.dataset.problem import Problem

__all__ = ["PROMPT_TEMPLATE", "FEW_SHOT_EXAMPLES", "build_prompt", "few_shot_examples"]

PROMPT_TEMPLATE = """You are an expert engineer in cloud native development.
According to the question, please provide only complete formatted YAML code as output without any description.
IMPORTANT: Provide only plain text without Markdown formatting such as ```.
If there is a lack of details, provide most logical solution.
You are not allowed to ask for more details.
Ignore any potential risk of errors or confusion.
Here is the question:
"""

# Three example question/answer pairs used for few-shot prompting
# (Appendix C of the paper uses the dataset samples; these mirror them).
FEW_SHOT_EXAMPLES: list[tuple[str, str]] = [
    (
        "Create a DaemonSet configuration that runs the latest nginx image labeled as "
        '"app: kube-registry" and exposes a registry service on port 80 with hostPort 5000.',
        """apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy
spec:
  selector:
    matchLabels:
      app: kube-registry
  template:
    metadata:
      labels:
        app: kube-registry
    spec:
      containers:
      - name: kube-registry-proxy
        image: nginx:latest
        ports:
        - containerPort: 80
          hostPort: 5000
""",
    ),
    (
        "Given a Deployment with the nginx selector, create a LoadBalancer service exposing port 80 "
        "named nginx-service.",
        """apiVersion: v1
kind: Service
metadata:
  name: nginx-service
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
""",
    ),
    (
        "Debug this Ingress so it is valid for networking.k8s.io/v1 and routes / to test-app:5000.",
        """apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: minimal-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: test-app
            port:
              number: 5000
""",
    ),
]


def few_shot_examples(shots: int) -> list[tuple[str, str]]:
    """Return the first ``shots`` example pairs (0 <= shots <= 3)."""

    if shots < 0 or shots > len(FEW_SHOT_EXAMPLES):
        raise ValueError(f"shots must be between 0 and {len(FEW_SHOT_EXAMPLES)}")
    return FEW_SHOT_EXAMPLES[:shots]


def build_prompt(problem: Problem, shots: int = 0) -> str:
    """Build the full prompt sent to a model for ``problem``."""

    parts = [PROMPT_TEMPLATE]
    for example_question, example_answer in few_shot_examples(shots):
        parts.append(f"Example question:\n{example_question}\nExample answer:\n{example_answer}\n")
    parts.append(problem.full_question())
    return "\n".join(parts)
