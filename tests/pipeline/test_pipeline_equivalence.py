"""Acceptance: the staged pipeline reproduces the legacy evaluation path
bit-for-bit on the zero-shot corpus, for every executor backend."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.llm.interface import GenerationRequest, QueryModule
from repro.pipeline import EvaluationPipeline
from repro.scoring.compiled import ReferenceStore, score_batch


def _legacy_scorecards(model, requests, store):
    """The pre-pipeline evaluate_model body: query_batch + score_batch."""

    results = QueryModule(model, max_workers=1).query_batch(requests)
    cards = score_batch(
        ((result.request.problem, result.response) for result in results),
        run_unit_tests=True,
        store=store,
        max_workers=1,
    )
    return [(r.request.problem.problem_id, r.response) for r in results], cards


@pytest.mark.parametrize("executor", ["serial", "thread", "cluster"])
def test_pipeline_matches_legacy_scorecards_zero_shot(small_benchmark, executor):
    """EvaluationPipeline (incl. ClusterExecutor) == legacy query+score loop."""

    model, requests = small_benchmark.requests("gpt-4")
    legacy_pairs, legacy_cards = _legacy_scorecards(model, requests, ReferenceStore())

    pipeline = EvaluationPipeline(model, executor=executor, max_workers=4, store=ReferenceStore())
    records = pipeline.run(requests).records

    assert [(r.problem_id, r.raw_response) for r in records] == legacy_pairs
    assert [r.scores for r in records] == legacy_cards


def test_evaluate_model_is_a_thin_pipeline_wrapper(small_dataset):
    """The public API returns exactly what the pipeline streams."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig())
    problems = list(small_dataset)[:12]
    via_api = benchmark.evaluate_model("gpt-4", problems=problems)

    model, requests = benchmark.requests("gpt-4", problems=problems)
    via_pipeline = benchmark.pipeline(model).run(requests)
    assert via_api.records == via_pipeline.records
    assert via_api.model_name == via_pipeline.model_name


def test_streamed_records_equal_batch_records(small_dataset):
    """run_iter and run agree record-for-record (streaming changes nothing)."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig())
    model, requests = benchmark.requests("gpt-3.5", problems=list(small_dataset)[:15])
    batch = benchmark.pipeline(model).run(requests).records
    streamed = list(benchmark.pipeline(model).run_iter(requests))
    assert streamed == batch


def test_multi_sample_dedupe_consistency(small_dataset):
    """Repeated samples score identically whether deduped in one batch or many."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig())
    problems = list(small_dataset)[:5]
    model, requests = benchmark.requests("gpt-4", problems=problems, samples=3)

    small_batches = EvaluationPipeline(model, store=ReferenceStore(), batch_size=2).run(requests)
    one_batch = EvaluationPipeline(model, store=ReferenceStore(), batch_size=1000).run(requests)
    assert small_batches.records == one_batch.records
