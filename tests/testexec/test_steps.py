"""Tests for unit-test step serialisation and script rendering."""

from __future__ import annotations

import pytest

from repro.testexec import steps as S


def test_program_round_trips_through_dict():
    program = S.UnitTestProgram(
        steps=(
            S.CreateNamespace("dev"),
            S.ApplyAnswer(namespace="dev"),
            S.WaitFor("Deployment", "available", name="web", namespace="dev"),
            S.AssertJsonPath("Deployment", "{.spec.replicas}", expected="2", name="web", namespace="dev"),
            S.AssertJsonPath("Pod", "{.items[*].metadata.name}", one_of=("a", "b"), selector={"app": "web"}),
        ),
        target="kubernetes",
        nodes=2,
    )
    restored = S.UnitTestProgram.from_dict(program.to_dict())
    assert restored == program


def test_step_from_dict_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown step"):
        S.step_from_dict({"step": "NotAStep"})


def test_program_rejects_unknown_target():
    with pytest.raises(ValueError, match="target"):
        S.UnitTestProgram(steps=(), target="bare-metal")


def test_script_lines_end_with_pass_marker():
    program = S.UnitTestProgram(steps=(S.ApplyAnswer(),), target="kubernetes")
    lines = program.script_lines()
    assert lines[-1] == "echo unit_test_passed"
    assert any("kubectl apply -f labeled_code.yaml" in line for line in lines)


def test_line_count_grows_with_steps():
    short = S.UnitTestProgram(steps=(S.ApplyAnswer(),))
    long = S.UnitTestProgram(
        steps=(
            S.CreateNamespace("x"),
            S.ApplyAnswer(),
            S.AssertExists("Pod", "p"),
            S.AssertServiceReachable("svc"),
        )
    )
    assert long.line_count() > short.line_count()


def test_every_step_type_renders_script_lines():
    samples = [
        S.CreateNamespace("ns"),
        S.ApplyManifest("kind: ConfigMap\nmetadata:\n  name: c\n"),
        S.ApplyAnswer(),
        S.WaitFor("Pod", "Ready", selector={"app": "x"}),
        S.AssertExists("Pod", "p"),
        S.AssertJsonPath("Pod", "{.metadata.name}", expected="p", name="p"),
        S.AssertFieldAbsent("Pod", "{.spec.nodeName}", name="p"),
        S.AssertPodCount(selector={"app": "x"}, min_count=2),
        S.AssertServiceReachable("svc", port=80),
        S.AssertHostPortReachable(5000),
        S.AssertDescribeContains("Ingress", "ing", "backend"),
        S.AssertEnvoyListenerPort(10000),
        S.AssertEnvoyRoute(10000, "cluster_a"),
        S.AssertEnvoyClusterLb("cluster_a", "LEAST_REQUEST"),
        S.AssertEnvoyClusterEndpoints("cluster_a", "127.0.0.1", 8080),
        S.AssertIstioLbPolicy("rule", "LEAST_REQUEST"),
        S.AssertIstioSubsetLabels("rule", "v1", {"version": "v1"}),
        S.AssertIstioDestination("vs", "reviews"),
        S.AssertGatewayServer("gw", 80, "HTTP"),
    ]
    for step in samples:
        lines = step.script_lines()
        assert lines and all(isinstance(line, str) and line for line in lines)
        # Every step also survives a serialisation round-trip.
        assert S.step_from_dict(step.to_dict()) == step
