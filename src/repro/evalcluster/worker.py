"""Worker nodes: claim jobs, pull images, run the work, report back.

A worker always runs the same claim/run/report loop on the discrete-event
queue; *what* "running" a job means is a pluggable :class:`JobRunner`:

* :class:`SimulatedClock` — the Figure 5 mode.  The job is not executed;
  its duration is derived from the image-pull model (worker-local cache,
  shared pull-through cache, contended internet uplink) plus the measured
  per-problem base time.
* :class:`RealExecution` — the cluster-runtime mode.  The job's payload
  (a zero-argument callable carrying real score or unit-test work) is
  executed in-process and its result is reported to the master.

Both modes speak the identical job/claim/report protocol against the same
:class:`~repro.evalcluster.master.Master`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.master import EvaluationJob, Master
from repro.evalcluster.registry_cache import PullThroughCache, WorkerImageCache

__all__ = ["JobOutcome", "JobRunner", "SimulatedClock", "RealExecution", "Worker"]


@dataclass(frozen=True)
class JobOutcome:
    """What running one job produced: a verdict, a duration, and a result."""

    passed: bool
    seconds: float  # simulated (SimulatedClock) or zero (RealExecution)
    result: Any = None


class JobRunner(Protocol):
    """Strategy deciding what executing a claimed job means."""

    def run(self, worker: "Worker", job: EvaluationJob) -> JobOutcome:  # pragma: no cover
        ...


class SimulatedClock:
    """Timing-only execution: Figure 5's image-pull and base-time model.

    Nothing is actually run; the outcome's duration is the time the job
    *would* take on a 4-core / 8 GB Minikube VM — image pulls over the
    shared uplink (or the LAN when the pull-through cache has the layers)
    plus the measured apply/wait/assert/cleanup base time.
    """

    def run(self, worker: "Worker", job: EvaluationJob) -> JobOutcome:
        now = worker.events.now
        # 1. Pull images that are not in the worker's local Docker cache.
        pull_finish = now
        lan_mb = 0.0
        for image in job.images:
            plan = worker.image_cache.pull(image)
            if plan.internet_mb > 0:
                pull_finish = max(pull_finish, worker.internet.request(plan.internet_mb, now))
            lan_mb += plan.lan_mb
        # LAN transfers from the master's cache are fast and uncontended.
        lan_seconds = lan_mb * 8.0 / worker.lan_bandwidth_mbps
        # 2. Run the test itself (environment setup, apply, waits, cleanup).
        total_delay = (pull_finish - now) + lan_seconds + job.base_seconds
        return JobOutcome(passed=True, seconds=total_delay)


class RealExecution:
    """Execute the job's payload in-process and report its result.

    A raising payload fails the job (mirroring a non-zero exit of the
    per-problem bash script) instead of tearing down the worker loop; the
    exception text becomes the reported result.
    """

    def run(self, worker: "Worker", job: EvaluationJob) -> JobOutcome:
        if job.payload is None:
            raise ValueError(f"job {job.job_id!r} has no payload to execute")
        try:
            result = job.payload()
        except Exception as exc:  # noqa: BLE001 - worker must survive bad jobs
            return JobOutcome(passed=False, seconds=0.0, result=f"{type(exc).__name__}: {exc}")
        return JobOutcome(passed=True, seconds=0.0, result=result)


@dataclass
class Worker:
    """A 4-core / 8 GB evaluation VM running Minikube and Docker.

    Each worker boots once (``boot_seconds``), then loops: claim a job from
    the master, run it through the configured :class:`JobRunner`, report,
    repeat.  The worker drives itself through the event queue so many
    workers interleave correctly (on the shared link in simulation, on the
    job queue in real execution).
    """

    worker_id: str
    master: Master
    events: EventQueue
    internet: SharedLink
    shared_cache: PullThroughCache
    boot_seconds: float = 180.0
    lan_bandwidth_mbps: float = 1000.0
    runner: JobRunner = field(default_factory=SimulatedClock)
    busy_seconds: float = field(default=0.0, init=False)
    jobs_completed: int = field(default=0, init=False)
    jobs_failed: int = field(default=0, init=False)
    finished_at: float = field(default=0.0, init=False)
    #: True once the claim loop drained the queue and parked.  A worker that
    #: died mid-job never parks, which is how the fault-tolerant runtime
    #: distinguishes survivors (re-wakeable) from casualties.
    idle: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.image_cache = WorkerImageCache(worker_id=self.worker_id, shared_cache=self.shared_cache)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Boot the VM and start the claim loop."""

        self.events.schedule(self.boot_seconds, self._claim_next)

    def _claim_next(self) -> None:
        job = self.master.claim(self.worker_id, self.events.now)
        if job is None:
            self.finished_at = self.events.now
            self.idle = True
            return
        self.idle = False  # back to work (a reaper may have re-woken us)
        self._run_job(job)

    # -- job execution ---------------------------------------------------------
    def _run_job(self, job: EvaluationJob) -> None:
        outcome = self.runner.run(self, job)
        self.busy_seconds += outcome.seconds

        def _complete() -> None:
            self.jobs_completed += 1
            if not outcome.passed:
                self.jobs_failed += 1
            self.master.report(
                job.job_id,
                self.worker_id,
                self.events.now,
                passed=outcome.passed,
                result=outcome.result,
            )
            self._claim_next()

        self.events.schedule(outcome.seconds, _complete)
