"""Scoring pipeline: text-level, YAML-aware and function-level metrics (§3.2).

The six metrics of the paper are implemented here:

========================  =====================================================
Metric                    Module / function
========================  =====================================================
BLEU                      :func:`repro.scoring.text_level.bleu`
Edit distance             :func:`repro.scoring.text_level.edit_distance_score`
Exact match               :func:`repro.scoring.text_level.exact_match`
Key-value exact match     :func:`repro.scoring.yaml_aware.key_value_exact_match`
Key-value wildcard match  :func:`repro.scoring.yaml_aware.key_value_wildcard_match`
Unit test                 :func:`repro.scoring.function_level.unit_test_score`
========================  =====================================================

:func:`repro.scoring.aggregate.score_answer` runs all six on one answer and
returns a :class:`~repro.scoring.aggregate.ScoreCard`.
"""

from repro.scoring.aggregate import METRIC_NAMES, ScoreCard, score_answer
from repro.scoring.function_level import unit_test_score
from repro.scoring.text_level import bleu, edit_distance_score, exact_match
from repro.scoring.yaml_aware import key_value_exact_match, key_value_wildcard_match

__all__ = [
    "METRIC_NAMES",
    "ScoreCard",
    "bleu",
    "edit_distance_score",
    "exact_match",
    "key_value_exact_match",
    "key_value_wildcard_match",
    "score_answer",
    "unit_test_score",
]
