"""Structural validation of Envoy static configurations."""

from __future__ import annotations

from typing import Any

__all__ = ["EnvoyValidationError", "validate_envoy_config"]


class EnvoyValidationError(ValueError):
    """Raised when an Envoy bootstrap configuration is invalid."""

    def __init__(self, message: str, field: str | None = None) -> None:
        self.field = field
        prefix = f"{field}: " if field else ""
        super().__init__(f"{prefix}{message}")


def _require(condition: bool, message: str, field: str | None = None) -> None:
    if not condition:
        raise EnvoyValidationError(message, field=field)


def _validate_address(address: Any, path: str) -> None:
    _require(isinstance(address, dict), "address must be a mapping", path)
    socket_address = address.get("socket_address")
    _require(isinstance(socket_address, dict), "address.socket_address is required", f"{path}.socket_address")
    port = socket_address.get("port_value")
    _require(
        isinstance(port, int) and 0 < port <= 65535,
        f"port_value {port!r} must be an integer in [1, 65535]",
        f"{path}.socket_address.port_value",
    )
    _require(bool(socket_address.get("address")), "socket_address.address is required", f"{path}.socket_address.address")


def _validate_listener(listener: Any, index: int) -> None:
    path = f"static_resources.listeners[{index}]"
    _require(isinstance(listener, dict), "listener must be a mapping", path)
    _validate_address(listener.get("address"), f"{path}.address")
    filter_chains = listener.get("filter_chains")
    _require(isinstance(filter_chains, list) and filter_chains, "listener needs filter_chains", f"{path}.filter_chains")
    for chain_index, chain in enumerate(filter_chains):
        chain_path = f"{path}.filter_chains[{chain_index}]"
        _require(isinstance(chain, dict), "filter chain must be a mapping", chain_path)
        filters = chain.get("filters")
        _require(isinstance(filters, list) and filters, "filter chain needs filters", f"{chain_path}.filters")
        for filter_index, http_filter in enumerate(filters):
            filter_path = f"{chain_path}.filters[{filter_index}]"
            _require(isinstance(http_filter, dict), "filter must be a mapping", filter_path)
            _require(bool(http_filter.get("name")), "filter needs a name", f"{filter_path}.name")


def _validate_cluster(cluster: Any, index: int) -> None:
    path = f"static_resources.clusters[{index}]"
    _require(isinstance(cluster, dict), "cluster must be a mapping", path)
    _require(bool(cluster.get("name")), "cluster needs a name", f"{path}.name")
    lb_policy = cluster.get("lb_policy", "ROUND_ROBIN")
    _require(
        lb_policy in ("ROUND_ROBIN", "LEAST_REQUEST", "RANDOM", "RING_HASH", "MAGLEV", "CLUSTER_PROVIDED"),
        f"unknown lb_policy {lb_policy!r}",
        f"{path}.lb_policy",
    )
    assignment = cluster.get("load_assignment")
    if assignment is not None:
        _require(isinstance(assignment, dict), "load_assignment must be a mapping", f"{path}.load_assignment")
        endpoints = assignment.get("endpoints")
        _require(isinstance(endpoints, list) and endpoints, "load_assignment needs endpoints", f"{path}.load_assignment.endpoints")
        for ep_index, endpoint_group in enumerate(endpoints):
            lb_endpoints = endpoint_group.get("lb_endpoints") if isinstance(endpoint_group, dict) else None
            _require(
                isinstance(lb_endpoints, list) and lb_endpoints,
                "endpoint group needs lb_endpoints",
                f"{path}.load_assignment.endpoints[{ep_index}].lb_endpoints",
            )
            for lbe_index, lb_endpoint in enumerate(lb_endpoints):
                endpoint = (lb_endpoint or {}).get("endpoint") if isinstance(lb_endpoint, dict) else None
                _require(isinstance(endpoint, dict), "lb_endpoint needs an endpoint", f"{path}...lb_endpoints[{lbe_index}].endpoint")
                _validate_address(endpoint.get("address"), f"{path}...lb_endpoints[{lbe_index}].endpoint.address")


def validate_envoy_config(config: Any) -> None:
    """Validate an Envoy bootstrap configuration dictionary."""

    _require(isinstance(config, dict), "Envoy configuration must be a mapping")
    static_resources = config.get("static_resources")
    _require(isinstance(static_resources, dict), "static_resources section is required", "static_resources")
    listeners = static_resources.get("listeners")
    _require(isinstance(listeners, list) and listeners, "static_resources.listeners is required", "static_resources.listeners")
    for index, listener in enumerate(listeners):
        _validate_listener(listener, index)
    clusters = static_resources.get("clusters")
    _require(isinstance(clusters, list) and clusters, "static_resources.clusters is required", "static_resources.clusters")
    for index, cluster in enumerate(clusters):
        _validate_cluster(cluster, index)
