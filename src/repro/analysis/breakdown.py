"""Per-factor performance breakdown (Table 9 and Figure 6).

The paper analyses unit-test scores along four perspectives: application
category (Kubernetes / Envoy / Istio), presence of a code context, length
of the reference answer, and question token count.  The functions here
compute those breakdowns from :class:`~repro.core.benchmark.ModelEvaluation`
records of the original dataset.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.benchmark import EvaluationRecord, ModelEvaluation

__all__ = ["PERSPECTIVES", "breakdown_table", "perspective_series"]


def _mean_unit_test(records: Sequence[EvaluationRecord]) -> float:
    if not records:
        return 0.0
    return float(np.mean([r.scores.unit_test for r in records]))


def _length_bucket(record: EvaluationRecord) -> str:
    if record.solution_lines < 15:
        return "[0, 15)"
    if record.solution_lines < 30:
        return "[15, 30)"
    return ">=30"


def _token_bucket(record: EvaluationRecord) -> str:
    if record.question_tokens < 50:
        return "[0, 50)"
    if record.question_tokens < 100:
        return "[50, 100)"
    return ">=100"


def _code_context_bucket(record: EvaluationRecord) -> str:
    return "w/ code" if record.has_code_context else "w/o code"


#: Figure 6 panels: perspective name -> (bucket labels, bucketing function).
PERSPECTIVES: dict[str, tuple[tuple[str, ...], Callable[[EvaluationRecord], str]]] = {
    "application": (("kubernetes", "envoy", "istio"), lambda r: r.application),
    "code_context": (("w/ code", "w/o code"), _code_context_bucket),
    "answer_lines": (("[0, 15)", "[15, 30)", ">=30"), _length_bucket),
    "question_tokens": (("[0, 50)", "[50, 100)", ">=100"), _token_bucket),
}


def breakdown_table(evaluation: ModelEvaluation, variant: str = "original") -> dict[str, dict[str, float]]:
    """Table 9 row for one model: unit-test score per bucket of every perspective."""

    records = [r for r in evaluation.first_samples() if r.variant == variant]
    table: dict[str, dict[str, float]] = {}
    for perspective, (buckets, key_fn) in PERSPECTIVES.items():
        table[perspective] = {
            bucket: _mean_unit_test([r for r in records if key_fn(r) == bucket]) for bucket in buckets
        }
    return table


def perspective_series(
    evaluations: Sequence[ModelEvaluation],
    perspective: str,
    variant: str = "original",
) -> dict[str, list[float]]:
    """Figure 6 panel: one series per bucket, indexed by model rank order."""

    if perspective not in PERSPECTIVES:
        raise KeyError(f"unknown perspective {perspective!r}; available: {list(PERSPECTIVES)}")
    buckets, _ = PERSPECTIVES[perspective]
    series: dict[str, list[float]] = {bucket: [] for bucket in buckets}
    for evaluation in evaluations:
        table = breakdown_table(evaluation, variant=variant)
        for bucket in buckets:
            series[bucket].append(table[perspective][bucket])
    return series
