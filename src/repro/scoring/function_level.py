"""Function-level metric: run the problem's unit test against the answer."""

from __future__ import annotations

from repro.dataset.problem import Problem
from repro.testexec.executor import UnitTestResult, execute_unit_test

__all__ = ["run_unit_test", "unit_test_score"]


def run_unit_test(problem: Problem, generated_yaml: str) -> UnitTestResult:
    """Execute the problem's unit-test program against the generated YAML."""

    return execute_unit_test(problem.unit_test, generated_yaml)


def unit_test_score(problem: Problem, generated_yaml: str) -> float:
    """1.0 if the generated YAML passes the problem's unit test, else 0.0."""

    return run_unit_test(problem, generated_yaml).score
