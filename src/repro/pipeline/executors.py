"""Executor backends the pipeline stages fan work out over.

An executor is a deliberately tiny abstraction — ordered ``map`` over pure
tasks — so stages stay oblivious to *where* their work runs:

* :class:`SerialExecutor` — in-line, zero overhead, the default.
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool,
  mirroring the paper's ray-parallel querying of rate-limited APIs.
* :class:`ClusterExecutor` — dispatches each task as an
  :class:`~repro.evalcluster.master.EvaluationJob` payload through the
  master/worker job-claim-report protocol, i.e. the same queue the
  Figure 5 simulation exercises, but with workers in
  :class:`~repro.evalcluster.worker.RealExecution` mode actually running
  the work.

All three are deterministic: tasks are pure functions of their inputs and
results always come back in submission order, so the backend choice can
never change a ScoreCard.  Async, process-pool and remote backends are
ROADMAP follow-ons behind the same interface.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.evalcluster.master import EvaluationJob
from repro.evalcluster.runtime import run_jobs

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ClusterExecutor",
    "resolve_executor",
]

#: Executor specs accepted by :func:`resolve_executor` (and therefore by
#: ``BenchmarkConfig.executor``), in the order they should be documented.
EXECUTOR_NAMES: tuple[str, ...] = ("serial", "thread", "cluster")

T = TypeVar("T")
R = TypeVar("R")


@runtime_checkable
class Executor(Protocol):
    """Ordered map over independent tasks."""

    name: str

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:  # pragma: no cover
        ...


class SerialExecutor:
    """Run every task in-line, in order."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ThreadedExecutor:
    """Fan tasks out over a thread pool; results stay in submission order."""

    name = "thread"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if self.max_workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, tasks))


class ClusterExecutor:
    """Run tasks as real jobs on the in-process evaluation cluster.

    Every task becomes an :class:`EvaluationJob` whose payload closes over
    ``fn`` and the task; jobs are submitted to a fresh master, claimed by
    ``num_workers`` in-process workers and their results collected from
    the job reports — one protocol for simulation and execution.  A task
    that raises surfaces its exception here (executors must not silently
    swallow failures into result slots).
    """

    name = "cluster"

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        jobs = [
            EvaluationJob(
                job_id=f"job-{index:06d}",
                problem_id=getattr(task, "problem_id", f"task-{index:06d}"),
                payload=lambda fn=fn, task=task: fn(task),
            )
            for index, task in enumerate(tasks)
        ]
        reports = run_jobs(jobs, num_workers=self.num_workers)
        results: list[R] = []
        for job in jobs:
            report = reports[job.job_id]
            if not report.passed:
                raise RuntimeError(f"cluster job {job.job_id} failed: {report.result}")
            results.append(report.result)
        return results


def resolve_executor(executor: str | Executor, max_workers: int = 1) -> Executor:
    """Turn a config spec (``"serial"`` / ``"thread"`` / ``"cluster"`` or an
    executor instance) into an executor."""

    if not isinstance(executor, str):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadedExecutor(max_workers=max(1, max_workers))
    if executor == "cluster":
        return ClusterExecutor(num_workers=max(1, max_workers))
    raise ValueError(f"unknown executor {executor!r} (expected one of {EXECUTOR_NAMES})")
