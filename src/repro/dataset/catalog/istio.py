"""Istio problem templates (Table 2 column "Istio")."""

from __future__ import annotations

from repro.dataset.catalog.common import ProblemDraft, pick_source
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG

__all__ = ["generate"]

_SERVICES = ["ratings", "reviews", "details", "productpage", "payments", "catalog"]
_NAMESPACES = ["prod", "default", "bookinfo", "staging"]


def _destination_rule_lb(rng: DeterministicRNG, index: int) -> ProblemDraft:
    """The Appendix D example: a DestinationRule with a LEAST_REQUEST policy."""

    service = rng.choice(_SERVICES)
    namespace = rng.choice(_NAMESPACES)
    policy = rng.choice(["LEAST_REQUEST", "RANDOM", "ROUND_ROBIN"])
    name = service
    question = (
        f"I'm working with the bookinfo application in our Istio setup. I recall there was a "
        f"DestinationRule named \"{name}\" specifically for the {service} service in the {namespace} "
        f"namespace, which ensures traffic is load balanced using the {policy} strategy. Please "
        f"provide me the exact configuration for that."
    )
    reference = f"""apiVersion: networking.istio.io/v1beta1
kind: DestinationRule
metadata:
  name: {name}
  namespace: {namespace}
spec:
  host: {service}
  trafficPolicy:
    loadBalancer:
      simple: {policy}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertExists("DestinationRule", name, namespace=namespace),
        S.AssertJsonPath("DestinationRule", "{.spec.host}", expected=service, name=name, namespace=namespace),
        S.AssertIstioLbPolicy(name, policy, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"istio-destinationrule-lb-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DestinationRule",
        extra_difficulty=0.05,
    )


def _destination_rule_subsets(rng: DeterministicRNG, index: int) -> ProblemDraft:
    service = rng.choice(_SERVICES)
    namespace = rng.choice(_NAMESPACES)
    version = rng.choice(["v2", "v3"])
    main_policy = rng.choice(["LEAST_REQUEST", "ROUND_ROBIN"])
    subset_policy = "ROUND_ROBIN" if main_policy == "LEAST_REQUEST" else "RANDOM"
    name = service
    question = (
        f"I need an Istio destination rule YAML named \"{name}\" set up for the bookinfo "
        f"application's {service} service in the {namespace} namespace. This rule has the main "
        f"traffic load balanced using the {main_policy} strategy. Additionally, there is a specific "
        f"subset named testversion using version {version} labels, and for this subset, the traffic "
        f"is load balanced with a {subset_policy} approach. Please provide the entire YAML "
        f"configuration for this."
    )
    reference = f"""apiVersion: networking.istio.io/v1beta1
kind: DestinationRule
metadata:
  name: {name}
  namespace: {namespace}
spec:
  host: {service}
  trafficPolicy:
    loadBalancer:
      simple: {main_policy}
  subsets:
  - name: testversion
    labels:
      version: {version}
    trafficPolicy:
      loadBalancer:
        simple: {subset_policy}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertIstioLbPolicy(name, main_policy, namespace=namespace),
        S.AssertIstioLbPolicy(name, subset_policy, subset="testversion", namespace=namespace),
        S.AssertIstioSubsetLabels(name, "testversion", {"version": version}, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"istio-destinationrule-subsets-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="DestinationRule",
        extra_difficulty=0.1,
    )


def _virtual_service(rng: DeterministicRNG, index: int) -> ProblemDraft:
    service = rng.choice(_SERVICES)
    namespace = rng.choice(_NAMESPACES)
    subset = rng.choice(["v1", "v2", "stable"])
    name = f"{service}-routes"
    question = (
        f"Write an Istio VirtualService YAML named \"{name}\" in the {namespace} namespace for host "
        f"{service}. All HTTP traffic must be routed to the destination host {service}, subset "
        f"\"{subset}\"."
    )
    reference = f"""apiVersion: networking.istio.io/v1beta1
kind: VirtualService
metadata:
  name: {name}
  namespace: {namespace}
spec:
  hosts:
  - {service}
  http:
  - route:
    - destination:
        host: {service}
        subset: {subset}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertExists("VirtualService", name, namespace=namespace),
        S.AssertIstioDestination(name, host=service, subset=subset, namespace=namespace),
        S.AssertJsonPath("VirtualService", "{.spec.hosts[0]}", expected=service, name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"istio-virtualservice-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="VirtualService",
        extra_difficulty=0.05,
    )


def _gateway(rng: DeterministicRNG, index: int) -> ProblemDraft:
    namespace = rng.choice(_NAMESPACES)
    host = rng.choice(["bookinfo.example.com", "shop.example.com", "api.example.com", "*"])
    port = rng.choice([80, 8080, 443])
    protocol = "HTTPS" if port == 443 else "HTTP"
    name = "app-gateway"
    question = (
        f"Create an Istio Gateway named \"{name}\" in the {namespace} namespace using the default "
        f"istio ingressgateway (selector istio: ingressgateway). It must expose a server on port "
        f"{port} with protocol {protocol} named http for the host \"{host}\"."
    )
    tls_block = "\n    tls:\n      mode: SIMPLE\n      credentialName: app-cert" if protocol == "HTTPS" else ""
    question += " Use SIMPLE TLS with the credential app-cert." if protocol == "HTTPS" else ""
    reference = f"""apiVersion: networking.istio.io/v1beta1
kind: Gateway
metadata:
  name: {name}
  namespace: {namespace}
spec:
  selector:
    istio: ingressgateway
  servers:
  - port:
      number: {port}
      name: http  # *
      protocol: {protocol}
    hosts:
    - "{host}"{tls_block}
"""
    steps = [
        S.CreateNamespace(namespace),
        S.ApplyAnswer(),
        S.AssertExists("Gateway", name, namespace=namespace),
        S.AssertGatewayServer(name, port=port, protocol=protocol, host=host, namespace=namespace),
        S.AssertJsonPath("Gateway", "{.spec.selector.istio}", expected="ingressgateway", name=name, namespace=namespace),
    ]
    return ProblemDraft(
        slug=f"istio-gateway-{index}",
        question=question,
        reference_yaml=reference,
        steps=steps,
        source=pick_source(rng),
        primary_kind="Gateway",
        extra_difficulty=0.1,
    )


_TEMPLATES = [_destination_rule_lb, _destination_rule_subsets, _virtual_service, _gateway]


def generate(rng: DeterministicRNG, count: int) -> list[ProblemDraft]:
    """Generate ``count`` Istio problems."""

    drafts = []
    for index in range(count):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        drafts.append(template(rng.child("istio", index), index))
    return drafts
