"""Tests for prompt construction and the query module."""

from __future__ import annotations

import pytest

from repro.dataset.problem import Problem
from repro.llm.interface import GenerationRequest, QueryModule
from repro.llm.prompt import PROMPT_TEMPLATE, build_prompt, few_shot_examples
from repro.llm.registry import get_model


def test_prompt_template_requests_yaml_only():
    assert "YAML" in PROMPT_TEMPLATE
    assert "without any description" in PROMPT_TEMPLATE


def test_build_prompt_contains_question_and_template(small_dataset):
    problem = small_dataset[0]
    prompt = build_prompt(problem)
    assert prompt.startswith(PROMPT_TEMPLATE.splitlines()[0])
    assert problem.question.split(".")[0] in prompt


def test_build_prompt_includes_context(small_original_problems):
    with_context = next(p for p in small_original_problems if p.has_code_context)
    assert "```" in build_prompt(with_context)


def test_few_shot_examples_count_and_bounds():
    assert len(few_shot_examples(0)) == 0
    assert len(few_shot_examples(3)) == 3
    with pytest.raises(ValueError):
        few_shot_examples(4)


def test_build_prompt_with_shots_is_longer(small_dataset):
    problem = small_dataset[0]
    assert len(build_prompt(problem, shots=3)) > len(build_prompt(problem, shots=0))


def test_query_module_preserves_order(small_original_problems):
    model = get_model("gpt-4")
    module = QueryModule(model)
    problems = list(small_original_problems)[:5]
    results = module.query_problems(problems)
    assert [r.request.problem.problem_id for r in results] == [p.problem_id for p in problems]
    assert all(r.model_name == "gpt-4" for r in results)


def test_query_module_parallel_matches_sequential(small_original_problems):
    model = get_model("gpt-4")
    problems = list(small_original_problems)[:6]
    sequential = QueryModule(model, max_workers=1).query_problems(problems)
    parallel = QueryModule(model, max_workers=4).query_problems(problems)
    assert [r.response for r in sequential] == [r.response for r in parallel]


def test_query_module_multiple_samples(small_original_problems):
    model = get_model("gpt-3.5")
    results = QueryModule(model).query_problems(list(small_original_problems)[:2], samples=3)
    assert len(results) == 6
    assert {r.request.sample_index for r in results} == {0, 1, 2}


def test_query_module_rejects_zero_workers():
    with pytest.raises(ValueError):
        QueryModule(get_model("gpt-4"), max_workers=0)


def test_generation_request_prompt_includes_template(small_dataset):
    request = GenerationRequest(problem=small_dataset[0], shots=1)
    assert "expert engineer" in request.prompt()


class _FlakyModel:
    """Fails on selected problems; answers everything else."""

    name = "flaky"

    def __init__(self, failing_ids: set[str]) -> None:
        self.failing_ids = failing_ids

    def generate(self, problem: Problem, shots: int = 0, sample_index: int = 0) -> str:
        if problem.problem_id in self.failing_ids:
            raise TimeoutError(f"endpoint timed out on {problem.problem_id}")
        return problem.reference_plain()


def test_query_batch_captures_per_request_errors(small_original_problems):
    problems = list(small_original_problems)[:5]
    failing = {problems[1].problem_id, problems[3].problem_id}
    module = QueryModule(_FlakyModel(failing))
    results = module.query_batch([GenerationRequest(problem=p) for p in problems])
    assert len(results) == len(problems)
    for result in results:
        if result.request.problem.problem_id in failing:
            assert not result.ok
            assert result.response == ""
            assert result.error.startswith("TimeoutError:")
        else:
            assert result.ok and result.error == ""
            assert result.response


def test_query_batch_error_capture_matches_parallel(small_original_problems):
    problems = list(small_original_problems)[:6]
    failing = {problems[0].problem_id}
    requests = [GenerationRequest(problem=p) for p in problems]
    sequential = QueryModule(_FlakyModel(failing)).query_batch(requests)
    parallel = QueryModule(_FlakyModel(failing), max_workers=4).query_batch(requests)
    assert [(r.response, r.error) for r in sequential] == [(r.response, r.error) for r in parallel]


def test_single_query_still_raises(small_original_problems):
    problem = list(small_original_problems)[0]
    module = QueryModule(_FlakyModel({problem.problem_id}))
    with pytest.raises(TimeoutError):
        module.query(GenerationRequest(problem=problem))
