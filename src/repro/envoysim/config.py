"""Queryable model of an Envoy static configuration.

After validation, unit tests ask routing questions: "does a request to
listener port 10000 with path ``/service`` reach cluster
``some_service``?".  :class:`EnvoyConfig` answers those by walking the
listener's HTTP connection manager route configuration the way Envoy's
router filter would.
"""

from __future__ import annotations

from typing import Any

from repro.envoysim.validation import validate_envoy_config

__all__ = ["EnvoyConfig"]


class EnvoyConfig:
    """A validated Envoy static configuration with routing queries."""

    def __init__(self, config: dict[str, Any]) -> None:
        validate_envoy_config(config)
        self.config = config

    # -- accessors ---------------------------------------------------------
    @property
    def listeners(self) -> list[dict[str, Any]]:
        return list(self.config.get("static_resources", {}).get("listeners", []))

    @property
    def clusters(self) -> list[dict[str, Any]]:
        return list(self.config.get("static_resources", {}).get("clusters", []))

    def listener_ports(self) -> list[int]:
        """All listener ports."""

        ports = []
        for listener in self.listeners:
            port = listener.get("address", {}).get("socket_address", {}).get("port_value")
            if isinstance(port, int):
                ports.append(port)
        return ports

    def cluster(self, name: str) -> dict[str, Any] | None:
        """Fetch a cluster by name."""

        for cluster in self.clusters:
            if cluster.get("name") == name:
                return cluster
        return None

    def cluster_lb_policy(self, name: str) -> str | None:
        """The load-balancing policy configured for a cluster."""

        cluster = self.cluster(name)
        if cluster is None:
            return None
        return str(cluster.get("lb_policy", "ROUND_ROBIN"))

    def cluster_endpoints(self, name: str) -> list[tuple[str, int]]:
        """(address, port) pairs of a cluster's configured endpoints."""

        cluster = self.cluster(name)
        if cluster is None:
            return []
        endpoints: list[tuple[str, int]] = []
        assignment = cluster.get("load_assignment", {}) or {}
        for group in assignment.get("endpoints", []) or []:
            for lb_endpoint in group.get("lb_endpoints", []) or []:
                address = ((lb_endpoint.get("endpoint") or {}).get("address") or {}).get("socket_address", {})
                host = address.get("address")
                port = address.get("port_value")
                if host and isinstance(port, int):
                    endpoints.append((str(host), port))
        return endpoints

    # -- routing simulation ---------------------------------------------------
    def _route_configs(self, listener: dict[str, Any]) -> list[dict[str, Any]]:
        configs: list[dict[str, Any]] = []
        for chain in listener.get("filter_chains", []) or []:
            for http_filter in chain.get("filters", []) or []:
                typed = http_filter.get("typed_config") or http_filter.get("config") or {}
                route_config = typed.get("route_config")
                if isinstance(route_config, dict):
                    configs.append(route_config)
        return configs

    def route(self, port: int, path: str = "/", host: str = "*") -> str | None:
        """Resolve a request to the cluster it would be routed to.

        Returns the cluster name, or ``None`` when no listener owns the port
        or no route matches.
        """

        for listener in self.listeners:
            listener_port = listener.get("address", {}).get("socket_address", {}).get("port_value")
            if listener_port != port:
                continue
            for route_config in self._route_configs(listener):
                for virtual_host in route_config.get("virtual_hosts", []) or []:
                    domains = [str(d) for d in virtual_host.get("domains", []) or []]
                    if domains and host not in domains and "*" not in domains:
                        continue
                    for route in virtual_host.get("routes", []) or []:
                        match = route.get("match", {}) or {}
                        prefix = match.get("prefix")
                        exact = match.get("path")
                        matched = (prefix is not None and path.startswith(str(prefix))) or (
                            exact is not None and path == str(exact)
                        )
                        if matched:
                            action = route.get("route", {}) or {}
                            cluster_name = action.get("cluster")
                            if cluster_name:
                                return str(cluster_name)
        return None

    def request_succeeds(self, port: int, path: str = "/", host: str = "*") -> bool:
        """Whether a request would reach a cluster with at least one endpoint."""

        cluster_name = self.route(port, path, host)
        if cluster_name is None:
            return False
        cluster = self.cluster(cluster_name)
        if cluster is None:
            return False
        # STRICT_DNS/LOGICAL_DNS clusters with endpoints, or EDS clusters,
        # are considered healthy in the simulator.
        return bool(self.cluster_endpoints(cluster_name)) or cluster.get("type") == "EDS"
