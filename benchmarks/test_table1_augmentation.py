"""Table 1 — Statistics of practical data augmentation.

Paper: 337 problems per variant; simplification reduces the average word
count by 25.7 % and the token count by 20.9 %; the translated variant uses
fewer words than the original.
"""

from __future__ import annotations

from benchmarks.common import bench_dataset
from repro.dataset.schema import Variant
from repro.dataset.statistics import augmentation_statistics, format_table1


def test_table1_augmentation(benchmark):
    dataset = bench_dataset()
    stats = benchmark.pedantic(augmentation_statistics, args=(dataset,), rounds=1, iterations=1)

    print("\n" + format_table1(stats))

    original = stats[Variant.ORIGINAL]
    simplified = stats[Variant.SIMPLIFIED]
    translated = stats[Variant.TRANSLATED]

    # Same number of questions per variant.
    assert original.count == simplified.count == translated.count
    # Simplification shortens questions in both measures.
    assert simplified.avg_words < original.avg_words
    assert simplified.avg_tokens < original.avg_tokens
    # Translation uses fewer words than the original English phrasing.
    assert translated.avg_words < original.avg_words
