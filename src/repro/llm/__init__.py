"""LLM layer: prompting, the query module, and simulated model profiles.

The paper evaluates 12 local/remote LLMs through a universal query module.
Offline, model endpoints are replaced by :class:`~repro.llm.simulated.SimulatedModel`
instances whose answer quality is calibrated per model from the paper's
published results (Table 4, Table 5, Table 6, Table 9, Figure 7, Figure 8).
Every other part of the pipeline — prompt construction, post-processing,
scoring, failure analysis — operates on the generated text exactly as it
would on responses from a real endpoint.
"""

from repro.llm.interface import AsyncModel, GenerationRequest, Model, QueryModule
from repro.llm.prompt import PROMPT_TEMPLATE, build_prompt, few_shot_examples
from repro.llm.registry import available_models, calibrate_models, get_model
from repro.llm.remote import (
    EndpointError,
    LiveEndpointModel,
    RemoteEndpointModel,
    TransientEndpointError,
    http_transport,
)
from repro.llm.simulated import ModelProfile, SimulatedModel

__all__ = [
    "AsyncModel",
    "EndpointError",
    "GenerationRequest",
    "LiveEndpointModel",
    "Model",
    "ModelProfile",
    "PROMPT_TEMPLATE",
    "QueryModule",
    "RemoteEndpointModel",
    "SimulatedModel",
    "TransientEndpointError",
    "available_models",
    "build_prompt",
    "calibrate_models",
    "few_shot_examples",
    "get_model",
    "http_transport",
]
