"""Sharded evaluation: split one model's run across sub-pipelines and stream them.

A full benchmark run is wall-clock-bound in two different places: the
generate stage waits on (rate-limited) model endpoints, the score stage
burns CPU on metrics and in-process unit tests.  Running them strictly
stage-by-stage leaves one resource idle while the other works.  This
module removes the barrier for a *single* model:

* :class:`~repro.pipeline.planner.ShardPlan` (re-exported here) describes
  the contiguous split; *where* the cuts land is the planner's policy —
  by request count, or by predicted seconds so heterogeneous shards
  finish together (:mod:`repro.pipeline.planner`).
* :class:`ShardedEvaluationPipeline` evaluates the shards overlapped:
  generation of shard *k+1* runs while shard *k* is being scored.  It is
  a thin single-model client of the
  :class:`~repro.pipeline.scheduler.MultiModelScheduler`, which owns the
  producer/consumer streaming machinery; a leaderboard run hands the
  scheduler several models at once and interleaves them.
* :func:`merge_evaluations` recombines per-shard
  :class:`~repro.pipeline.records.ModelEvaluation`s into the evaluation an
  unsharded run would have produced, bit-identically: the split is
  contiguous and every metric is a pure function, so shard count can
  never change a ScoreCard.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.evalcluster.cost import CostModel
from repro.llm.interface import GenerationRequest, Model
from repro.pipeline.checkpoint import PipelineCheckpoint
from repro.pipeline.executors import Executor, close_executor, resolve_executor
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE
from repro.pipeline.planner import BatchSizer, ShardPlan, ShardPlanner
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.scheduler import ModelJob, MultiModelScheduler
from repro.scoring.cache import ScoreCache
from repro.scoring.compiled import ReferenceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evalcluster.calibration import CalibrationStore
    from repro.llm.remote import ModelSpec

__all__ = ["ShardPlan", "ShardedEvaluationPipeline", "merge_evaluations"]


class ShardedEvaluationPipeline:
    """Evaluate one model's requests as ``N`` overlapped sub-pipelines.

    Parameters mirror :class:`~repro.pipeline.pipeline.EvaluationPipeline`
    with four additions:

    shards:
        Number of sub-pipelines; each gets its own checkpoint file
        (``<base>.shard-ii-of-nn``) derived from the ``checkpoint`` base
        path.
    planner:
        The :class:`~repro.pipeline.planner.ShardPlanner` deciding where
        the contiguous cuts land — request-count balance by default,
        :class:`~repro.pipeline.planner.CostPlanner` to balance shards by
        predicted seconds.
    generate_executor:
        Optional separate backend for the generate stage (typically
        ``"async"`` so remote-endpoint latencies overlap) while
        ``executor`` backs scoring (typically ``"process"`` for CPU-bound
        metric and unit-test work).
    prefetch_batches:
        How many prepared batches the generation thread may run ahead of
        scoring; bounds memory while keeping the overlap saturated.
    steal:
        Scheduling policy (forwarded to the scheduler): ``True`` releases
        batches in readiness order with dynamic claiming, ``False`` keeps
        the static order.  For a single model the record stream is
        identical either way.
    cost_model / calibration:
        The :class:`~repro.evalcluster.cost.CostModel` pricing batches
        for the steal policy, and the
        :class:`~repro.evalcluster.calibration.CalibrationStore` measured
        durations are fed into (see :mod:`repro.evalcluster.calibration`).

    The streamed records — and therefore the merged
    :class:`~repro.pipeline.records.ModelEvaluation` — are bit-identical
    to an unsharded serial run over the same requests, for any planner
    and either scheduling policy.
    """

    def __init__(
        self,
        model: Model,
        *,
        shards: int,
        planner: ShardPlanner | None = None,
        executor: str | Executor = "serial",
        generate_executor: str | Executor | None = None,
        max_workers: int = 1,
        rate_limit: float | None = None,
        lease_seconds: float | None = None,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        checkpoint: str | os.PathLike[str] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        prefetch_batches: int = 2,
        steal: bool = True,
        cost_model: CostModel | None = None,
        calibration: "CalibrationStore | None" = None,
        score_cache: ScoreCache | None = None,
        batch_sizer: BatchSizer | None = None,
        model_spec: "ModelSpec | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")
        if isinstance(checkpoint, PipelineCheckpoint):
            raise TypeError(
                "sharded runs derive one checkpoint file per shard; pass the base "
                "path (str or PathLike), not a PipelineCheckpoint instance"
            )
        self.model = model
        self.shards = shards
        self.planner = planner
        self.max_workers = max_workers
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests
        self.checkpoint_base = checkpoint
        self.batch_size = batch_size
        self.prefetch_batches = prefetch_batches
        self.steal = steal
        self.cost_model = cost_model
        self.calibration = calibration
        self.score_cache = score_cache
        self.batch_sizer = batch_sizer
        self.model_spec = model_spec
        # Executors are shared across every sub-pipeline so pools (threads,
        # processes, event-loop rate limiter) are built once per run, and
        # owned by this pipeline when resolved from spec strings.
        self._owns_executor = isinstance(executor, str)
        self._owns_generate_executor = isinstance(generate_executor, str)
        self.executor = resolve_executor(executor, max_workers, rate_limit, lease_seconds)
        self.generate_executor = (
            resolve_executor(generate_executor, max_workers, rate_limit, lease_seconds)
            if generate_executor is not None
            else None
        )
        self._schedulers: list[MultiModelScheduler] = []

    # ------------------------------------------------------------------
    # Scheduler assembly
    # ------------------------------------------------------------------
    def _scheduler(self, requests: list[GenerationRequest]) -> MultiModelScheduler:
        scheduler = MultiModelScheduler(
            [
                ModelJob(
                    self.model,
                    requests,
                    checkpoint=self.checkpoint_base,
                    model_spec=self.model_spec,
                )
            ],
            shards=self.shards,
            planner=self.planner,
            executor=self.executor,
            generate_executor=self.generate_executor,
            max_workers=self.max_workers,
            store=self.store,
            run_unit_tests=self.run_unit_tests,
            batch_size=self.batch_size,
            prefetch_batches=self.prefetch_batches,
            steal=self.steal,
            cost_model=self.cost_model,
            calibration=self.calibration,
            score_cache=self.score_cache,
            batch_sizer=self.batch_sizer,
        )
        self._schedulers.append(scheduler)
        return scheduler

    # ------------------------------------------------------------------
    # Streaming evaluation
    # ------------------------------------------------------------------
    def run_iter(self, requests: Iterable[GenerationRequest]) -> Iterator[EvaluationRecord]:
        """Stream finished records in request order, overlapping shards.

        The scheduler's producer thread drives the generation-side stages
        (shard by shard, at most ``prefetch_batches`` ahead) while this
        thread scores and yields — generation of shard *k+1* overlaps
        scoring of shard *k* instead of the full-barrier stage-by-stage
        pass.
        """

        scheduler = self._scheduler(list(requests))
        for _name, record in scheduler.run_iter():
            yield record

    def run(self, requests: Iterable[GenerationRequest]) -> ModelEvaluation:
        """Evaluate every request and merge the shards' records."""

        records = list(self.run_iter(requests))
        return ModelEvaluation(model_name=self.model.name, records=records)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the sub-pipelines' query pools and any owned executors."""

        for scheduler in self._schedulers:
            scheduler.close()  # closes pipelines; executors here are ours, not its
        if self._owns_executor:
            close_executor(self.executor)
        if self._owns_generate_executor and self.generate_executor is not None:
            close_executor(self.generate_executor)

    def __enter__(self) -> "ShardedEvaluationPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def merge_evaluations(evaluations: Sequence[ModelEvaluation]) -> ModelEvaluation:
    """Recombine per-shard evaluations of one model, in shard order.

    Because a :class:`~repro.pipeline.planner.ShardPlan` split is
    contiguous, concatenating the shards' records reproduces the unsharded
    record order — and therefore an unsharded run's
    :class:`~repro.pipeline.records.ModelEvaluation` — bit-identically.
    Use this when shards were evaluated independently (separate processes
    or machines) rather than through :class:`ShardedEvaluationPipeline`.
    """

    if not evaluations:
        raise ValueError(
            "no evaluations to merge: expected one ModelEvaluation per shard, got an "
            "empty sequence (did every shard of the run fail before producing records?)"
        )
    sizes = [len(evaluation.records) for evaluation in evaluations]
    first_name = evaluations[0].model_name
    for index, evaluation in enumerate(evaluations):
        if evaluation.model_name != first_name:
            raise ValueError(
                f"cannot merge evaluations of different models: shard 0 is "
                f"{first_name!r} but shard {index} is {evaluation.model_name!r} "
                f"(shard sizes: {sizes}); merge_evaluations recombines shards of "
                f"ONE model — combine models in a BenchmarkResult instead"
            )
    records: list[EvaluationRecord] = []
    for evaluation in evaluations:
        records.extend(evaluation.records)
    return ModelEvaluation(model_name=first_name, records=records)
