"""Distributed fleet scoring in the overlapped pipeline — the wire tax guard.

The fleet is the cross-machine deployment of the same seam the sharded
benchmark exercises: async generation keeps rate-limited requests in
flight while the score executor chews through finished shards.  Here the
score executor is a :class:`~repro.evalcluster.fleet.FleetExecutor` — a
socket-served store plus four out-of-process workers claiming chunked
jobs over the wire — so the measured ratio prices everything the wire
adds: pickled payload round-trips, claim/heartbeat traffic, lease
observation, and completion events.  A protocol regression (say, a chunk
size collapse back to one store round-trip per record) drags scoring
throughput below what generation feeds it and the ratio falls through
the floor.

The guard is ratio-based (fleet-sharded vs the serial pipeline, same
machine, same process tree), so CI runner speed cannot flake it; and the
ScoreCard assertion proves the wire moves zero scores.

A second guard covers the calibration-aware batch sizer: equal
*predicted seconds* cuts must spread batch cost strictly tighter than
fixed-count slicing on the bench corpus, without reordering a request.

The fleet event log (submit/claim/done/requeue timings) is written where
``REPRO_FLEET_EVENTS`` points and uploaded as a CI artifact.
"""

from __future__ import annotations

import math
import os
import time

from benchmarks.common import FAST_MODE, artifact_path, bench_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.fleet import FleetExecutor
from repro.llm.remote import RemoteEndpointModel
from repro.pipeline import (
    AsyncExecutor,
    EvaluationPipeline,
    ShardedEvaluationPipeline,
)
from repro.pipeline.planner import BatchSizer
from repro.scoring.compiled import ReferenceStore

MODEL_NAME = "gpt-4"

#: Per-request endpoint latency — same calibration as the sharded
#: benchmark: the fast corpus has fewer requests, so it charges a little
#: more per request to keep the serial baseline latency-dominated.
LATENCY_SECONDS = 0.02 if FAST_MODE else 0.012
JITTER_SECONDS = LATENCY_SECONDS / 4

SHARDS = 4
GENERATE_CONCURRENCY = 16
FLEET_WORKERS = 4

#: The guard: the fleet-scored sharded path must beat the serial pipeline
#: end to end by at least this factor.  Measured ~3.5-4x (the in-process
#: pool path measures ~4-5x; the gap is the wire tax), so 1.5x trips only
#: on a real loss of overlap or a protocol-overhead regression.
MIN_SPEEDUP = 1.5

#: Where the fleet's submit/claim/done/requeue event log lands for the
#: CI artifact.
FLEET_EVENTS_PATH = os.environ.get("REPRO_FLEET_EVENTS") or artifact_path("BENCH_fleet_events.jsonl")

#: Batch size for the batch-sizer spread guard (the config default).
BATCH_SIZE = 32


def _remote_model(inner):
    return RemoteEndpointModel(
        inner,
        latency_seconds=LATENCY_SECONDS,
        jitter_seconds=JITTER_SECONDS,
        seed=11,
    )


def test_fleet_throughput(benchmark):
    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    inner, requests = driver.requests(MODEL_NAME)

    # --- serial baseline: one request at a time, latency paid in full ----
    start = time.perf_counter()
    serial_eval = EvaluationPipeline(_remote_model(inner), store=ReferenceStore()).run(requests)
    serial_seconds = time.perf_counter() - start

    # --- fleet-scored sharded path ---------------------------------------
    executor = FleetExecutor(
        num_workers=FLEET_WORKERS,
        lease_seconds=60.0,
        event_log=FLEET_EVENTS_PATH,
    )
    executor.warm(list(dataset))
    # Boot the store and the four worker processes outside the timed
    # region: interpreter start-up is a fixed fleet cost, not throughput.
    executor.map(math.factorial, list(range(FLEET_WORKERS)))

    def run_fleet():
        sharded = ShardedEvaluationPipeline(
            _remote_model(inner),
            shards=SHARDS,
            executor=executor,
            generate_executor=AsyncExecutor(max_concurrency=GENERATE_CONCURRENCY),
            store=ReferenceStore(),
        )
        try:
            return sharded.run(requests)
        finally:
            sharded.close()

    try:
        fleet_eval = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
        fleet_seconds = benchmark.stats.stats.mean
        stats = executor.stats()
    finally:
        executor.close()
    speedup = serial_seconds / fleet_seconds

    benchmark.extra_info["requests"] = len(requests)
    benchmark.extra_info["latency_ms"] = LATENCY_SECONDS * 1000
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["fleet_seconds"] = round(fleet_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["fleet_stats"] = stats.describe()

    print(
        f"\nFleet-scored evaluation over {len(requests)} zero-shot requests "
        f"({MODEL_NAME} behind a {LATENCY_SECONDS * 1000:.0f}ms endpoint, "
        f"{FLEET_WORKERS} worker processes over the wire):"
        f"\n  serial pipeline              : {serial_seconds:6.2f} s"
        f"\n  fleet async+socket (x{SHARDS})     : {fleet_seconds:6.2f} s"
        f"\n  speedup                      : {speedup:6.2f} x"
        f"\n  {stats.describe()}"
    )

    # The wire must not move a single score...
    assert fleet_eval.records == serial_eval.records

    # ...no job may be lost to the lease machinery on a healthy run...
    assert stats.pending == 0 and stats.claimed == 0 and stats.abandoned == 0

    # ...and the fleet must actually deliver the wall-clock win.
    assert speedup >= MIN_SPEEDUP, (
        f"fleet path speedup {speedup:.2f}x fell below the {MIN_SPEEDUP}x floor "
        f"(serial {serial_seconds:.2f}s, fleet {fleet_seconds:.2f}s)"
    )


def test_batch_sizer_spreads_tighter_than_fixed_counts():
    """Equal-predicted-seconds cuts beat fixed counts on the bench corpus.

    The guard is the batch-sizer's reason to exist: the max−min spread of
    predicted batch seconds must be *strictly* tighter than fixed-count
    slicing (measured ~10x tighter on both corpora), with every request
    kept in submission order so records stay bit-identical.
    """

    dataset = bench_dataset()
    driver = CloudEvalBenchmark(dataset, BenchmarkConfig())
    _, requests = driver.requests(MODEL_NAME)

    sizer = BatchSizer(batch_size=BATCH_SIZE)
    batches = sizer.cut(requests)
    fixed = [
        requests[start : start + BATCH_SIZE]
        for start in range(0, len(requests), BATCH_SIZE)
    ]

    def spread(cut):
        seconds = sizer.predicted_seconds(cut)
        return max(seconds) - min(seconds)

    cost_spread, fixed_spread = spread(batches), spread(fixed)
    print(
        f"\nBatch-sizer spread over {len(requests)} requests (batch_size={BATCH_SIZE}): "
        f"cost {cost_spread:.1f}s vs fixed {fixed_spread:.1f}s"
    )

    assert [request for batch in batches for request in batch] == list(requests)
    assert len(batches) <= len(fixed)
    assert cost_spread < fixed_spread
