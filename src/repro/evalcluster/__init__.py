"""Cloud-based evaluation framework simulation (§3.3, §3.4).

The paper runs unit tests on a cluster of worker VMs coordinated by a
master with a Redis queue and a Docker registry pull-through cache, and
reports how evaluation time scales with the number of workers (Figure 5)
and what a full benchmark run costs (Table 3).  This package provides a
discrete-event simulation of that system:

* :mod:`repro.evalcluster.kvstore` — the Redis-like in-memory store used by
  the master for job state,
* :mod:`repro.evalcluster.registry_cache` — worker-local Docker caches plus
  the shared pull-through cache on the master,
* :mod:`repro.evalcluster.events` — a minimal discrete-event engine with a
  shared-bandwidth network link,
* :mod:`repro.evalcluster.master` / :mod:`repro.evalcluster.worker` — the
  scheduling actors; workers run in one of two :class:`JobRunner` modes,
  :class:`SimulatedClock` (timing only) or :class:`RealExecution`
  (execute the job payload in-process),
* :mod:`repro.evalcluster.runtime` — the executable cluster runtime
  (:func:`run_jobs` / :func:`run_payloads`) used by the pipeline's
  ``ClusterExecutor``,
* :mod:`repro.evalcluster.simulation` — the Figure 5 micro-benchmark,
* :mod:`repro.evalcluster.cost` — the Table 3 cost model,
* :mod:`repro.evalcluster.calibration` — the measured-duration store and
  the calibrated cost model that blends observations into the Figure 5
  predictions,
* :mod:`repro.evalcluster.fleet` — the same protocol over a real wire:
  a socket-served store, out-of-process workers, and the
  ``FleetExecutor`` pipeline backend.
"""

from typing import Any

from repro.evalcluster.calibration import CalibratedCostModel, CalibrationStore
from repro.evalcluster.cost import CostModel, benchmark_cost_table
from repro.evalcluster.kvstore import RedisLikeStore
from repro.evalcluster.master import EvaluationJob, JobReport, Master, MasterStats
from repro.evalcluster.registry_cache import PullThroughCache, WorkerImageCache
from repro.evalcluster.runtime import run_jobs, run_payloads
from repro.evalcluster.simulation import ClusterSimulationConfig, simulate_evaluation, sweep_workers
from repro.evalcluster.worker import JobOutcome, RealExecution, SimulatedClock, Worker

__all__ = [
    "CalibratedCostModel",
    "CalibrationStore",
    "ClusterSimulationConfig",
    "CostModel",
    "EvaluationJob",
    "FleetExecutor",
    "FleetWorker",
    "JobOutcome",
    "JobReport",
    "Master",
    "MasterStats",
    "PullThroughCache",
    "RealExecution",
    "RedisLikeStore",
    "RemoteStore",
    "SimulatedClock",
    "StoreServer",
    "Worker",
    "WorkerImageCache",
    "benchmark_cost_table",
    "run_jobs",
    "run_payloads",
    "simulate_evaluation",
    "sweep_workers",
]

#: Fleet names resolved lazily so ``python -m repro.evalcluster.fleet``
#: (the worker entrypoint) does not re-execute a module this package
#: already imported.
_FLEET_EXPORTS = frozenset({"FleetExecutor", "FleetWorker", "RemoteStore", "StoreServer"})


def __getattr__(name: str) -> Any:
    if name in _FLEET_EXPORTS:
        from repro.evalcluster import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
