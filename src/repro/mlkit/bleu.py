"""Smoothed BLEU implementation.

This mirrors the standard sentence-level BLEU with uniform 4-gram weights
and "add-epsilon" smoothing (NLTK's method-1 style smoothing) so short
YAML files that miss one n-gram order do not collapse to zero.  The score
is in [0, 1]; higher is better.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.mlkit.tokenize import yaml_tokenize

__all__ = ["sentence_bleu", "bleu_score"]


def _ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def _modified_precision(candidate: Sequence[str], reference: Sequence[str], n: int) -> tuple[int, int]:
    """Return (clipped matches, total candidate n-grams) for order ``n``."""

    cand_counts = _ngram_counts(candidate, n)
    ref_counts = _ngram_counts(reference, n)
    matches = sum(min(count, ref_counts[gram]) for gram, count in cand_counts.items())
    total = max(sum(cand_counts.values()), 0)
    return matches, total


def sentence_bleu(
    candidate_tokens: Sequence[str],
    reference_tokens: Sequence[str],
    max_order: int = 4,
    smoothing_epsilon: float = 0.1,
) -> float:
    """Compute smoothed sentence BLEU between two token sequences."""

    if not candidate_tokens or not reference_tokens:
        return 0.0

    log_precisions: list[float] = []
    for n in range(1, max_order + 1):
        matches, total = _modified_precision(candidate_tokens, reference_tokens, n)
        if total == 0:
            # Candidate shorter than n tokens: treat as a vanishing
            # contribution rather than an undefined one.
            log_precisions.append(math.log(smoothing_epsilon / 1.0))
            continue
        if matches == 0:
            precision = smoothing_epsilon / total
        else:
            precision = matches / total
        log_precisions.append(math.log(precision))

    geo_mean = math.exp(sum(log_precisions) / max_order)

    # Brevity penalty: penalise candidates shorter than the reference.
    cand_len = len(candidate_tokens)
    ref_len = len(reference_tokens)
    if cand_len >= ref_len:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - ref_len / cand_len)

    return max(0.0, min(1.0, brevity_penalty * geo_mean))


def bleu_score(candidate_text: str, reference_text: str, max_order: int = 4) -> float:
    """BLEU between two YAML texts using the shared YAML tokenizer."""

    return sentence_bleu(
        yaml_tokenize(candidate_text),
        yaml_tokenize(reference_text),
        max_order=max_order,
    )
