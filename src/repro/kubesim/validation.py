"""Per-kind manifest validation.

The simulator validates manifests with roughly the strictness of a real
API server running with strict field validation: wrong ``apiVersion`` for
the kind, missing required fields, selectors that do not match the pod
template, malformed ports and unknown top-level fields in well-known
structures are all rejected with :class:`~repro.kubesim.errors.ValidationError`.

The goal is behavioural fidelity for the *dataset's* problems: manifests
derived from the reference YAML must pass, and the common LLM mistakes the
paper describes (legacy Ingress backends, missing ``pathType``, selector
mismatches, invalid kinds) must fail.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.kubesim.errors import ValidationError
from repro.kubesim.resources import Resource, resolve_kind
from repro.kubesim.selectors import matches_selector

__all__ = ["validate_resource"]

_DNS1123_RE = re.compile(r"^[a-z0-9]([-a-z0-9.]*[a-z0-9])?$")
_IMAGE_RE = re.compile(r"^[\w./:@-]+$")


def _require(condition: bool, message: str, field: str | None = None) -> None:
    if not condition:
        raise ValidationError(message, field=field)


def _validate_metadata(resource: Resource) -> None:
    name = resource.name
    _require(bool(name), "metadata.name is required", "metadata.name")
    _require(len(name) <= 253, "metadata.name is too long", "metadata.name")
    _require(
        bool(_DNS1123_RE.match(name.lower())),
        f"metadata.name {name!r} is not a valid DNS-1123 name",
        "metadata.name",
    )


def _validate_api_version(resource: Resource) -> None:
    info = resolve_kind(resource.kind)
    _require(
        resource.api_version in info.api_versions,
        f"apiVersion {resource.api_version!r} is not served for kind {resource.kind}; "
        f"expected one of {list(info.api_versions)}",
        "apiVersion",
    )


# ---------------------------------------------------------------------------
# Containers and pod templates
# ---------------------------------------------------------------------------

_ALLOWED_CONTAINER_FIELDS = {
    "name",
    "image",
    "command",
    "args",
    "ports",
    "env",
    "envFrom",
    "resources",
    "volumeMounts",
    "livenessProbe",
    "readinessProbe",
    "startupProbe",
    "imagePullPolicy",
    "securityContext",
    "workingDir",
    "lifecycle",
    "stdin",
    "tty",
}


def _validate_container(container: dict[str, Any], path: str) -> None:
    _require(isinstance(container, dict), "container must be a mapping", path)
    _require(bool(container.get("name")), "container name is required", f"{path}.name")
    image = container.get("image")
    _require(bool(image), "container image is required", f"{path}.image")
    _require(
        isinstance(image, str) and bool(_IMAGE_RE.match(image)),
        f"container image {image!r} is malformed",
        f"{path}.image",
    )
    unknown = set(container) - _ALLOWED_CONTAINER_FIELDS
    _require(
        not unknown,
        f"unknown container fields: {sorted(unknown)}",
        path,
    )
    for i, port in enumerate(container.get("ports") or []):
        _require(isinstance(port, dict), "container port must be a mapping", f"{path}.ports[{i}]")
        number = port.get("containerPort")
        _require(
            isinstance(number, int) and 1 <= number <= 65535,
            f"containerPort {number!r} must be an integer in [1, 65535]",
            f"{path}.ports[{i}].containerPort",
        )
        host_port = port.get("hostPort")
        if host_port is not None:
            _require(
                isinstance(host_port, int) and 1 <= host_port <= 65535,
                f"hostPort {host_port!r} must be an integer in [1, 65535]",
                f"{path}.ports[{i}].hostPort",
            )
    for i, env in enumerate(container.get("env") or []):
        _require(isinstance(env, dict), "env entry must be a mapping", f"{path}.env[{i}]")
        _require(bool(env.get("name")), "env entry needs a name", f"{path}.env[{i}].name")
        has_value = "value" in env or "valueFrom" in env
        _require(has_value, "env entry needs value or valueFrom", f"{path}.env[{i}]")
    resources = container.get("resources") or {}
    if isinstance(resources, dict):
        for section in ("limits", "requests"):
            quantities = resources.get(section) or {}
            for key, quantity in quantities.items() if isinstance(quantities, dict) else []:
                _require(
                    _valid_quantity(quantity),
                    f"invalid resource quantity {quantity!r} for {key}",
                    f"{path}.resources.{section}.{key}",
                )


def _valid_quantity(quantity: Any) -> bool:
    if isinstance(quantity, (int, float)):
        return quantity >= 0
    if not isinstance(quantity, str):
        return False
    return bool(re.match(r"^\d+(\.\d+)?(m|Ki|Mi|Gi|Ti|k|M|G|T)?$", quantity))


def _validate_pod_spec(pod_spec: dict[str, Any], path: str) -> None:
    _require(isinstance(pod_spec, dict), "pod spec must be a mapping", path)
    containers = pod_spec.get("containers")
    _require(
        isinstance(containers, list) and len(containers) > 0,
        "pod spec needs at least one container",
        f"{path}.containers",
    )
    for i, container in enumerate(containers):
        _validate_container(container, f"{path}.containers[{i}]")
    for i, container in enumerate(pod_spec.get("initContainers") or []):
        _validate_container(container, f"{path}.initContainers[{i}]")
    volume_names = set()
    for i, volume in enumerate(pod_spec.get("volumes") or []):
        _require(isinstance(volume, dict), "volume must be a mapping", f"{path}.volumes[{i}]")
        _require(bool(volume.get("name")), "volume needs a name", f"{path}.volumes[{i}].name")
        volume_names.add(volume.get("name"))
    # volumeMounts must reference declared volumes (when any volumes exist).
    for i, container in enumerate(containers):
        for j, mount in enumerate(container.get("volumeMounts") or []):
            _require(isinstance(mount, dict), "volumeMount must be a mapping", f"{path}.containers[{i}].volumeMounts[{j}]")
            _require(bool(mount.get("mountPath")), "volumeMount needs mountPath", f"{path}.containers[{i}].volumeMounts[{j}].mountPath")
            name = mount.get("name")
            _require(bool(name), "volumeMount needs a name", f"{path}.containers[{i}].volumeMounts[{j}].name")
            if volume_names:
                _require(
                    name in volume_names,
                    f"volumeMount references undeclared volume {name!r}",
                    f"{path}.containers[{i}].volumeMounts[{j}].name",
                )


def _template_labels(template: dict[str, Any]) -> dict[str, str]:
    metadata = template.get("metadata") or {}
    labels = metadata.get("labels") or {}
    return {str(k): str(v) for k, v in labels.items()} if isinstance(labels, dict) else {}


def _validate_workload_selector(resource: Resource, require_selector: bool = True) -> None:
    spec = resource.spec
    template = spec.get("template")
    _require(isinstance(template, dict), "spec.template is required", "spec.template")
    _validate_pod_spec(template.get("spec", {}), "spec.template.spec")
    selector = spec.get("selector")
    if not require_selector and selector is None:
        return
    _require(isinstance(selector, dict), "spec.selector is required", "spec.selector")
    labels = _template_labels(template)
    _require(
        matches_selector(labels, selector),
        "spec.selector does not match spec.template.metadata.labels",
        "spec.selector",
    )


# ---------------------------------------------------------------------------
# Kind-specific validators
# ---------------------------------------------------------------------------

def _validate_pod(resource: Resource) -> None:
    _validate_pod_spec(resource.spec, "spec")


def _validate_deployment(resource: Resource) -> None:
    replicas = resource.spec.get("replicas", 1)
    _require(
        isinstance(replicas, int) and replicas >= 0,
        f"spec.replicas must be a non-negative integer, got {replicas!r}",
        "spec.replicas",
    )
    _validate_workload_selector(resource)


def _validate_daemonset(resource: Resource) -> None:
    _validate_workload_selector(resource)


def _validate_statefulset(resource: Resource) -> None:
    _validate_workload_selector(resource)
    _require(bool(resource.spec.get("serviceName")), "spec.serviceName is required", "spec.serviceName")


def _validate_replicaset(resource: Resource) -> None:
    _validate_workload_selector(resource)


def _validate_job(resource: Resource) -> None:
    template = resource.spec.get("template")
    _require(isinstance(template, dict), "spec.template is required", "spec.template")
    _validate_pod_spec(template.get("spec", {}), "spec.template.spec")
    restart_policy = (template.get("spec") or {}).get("restartPolicy", "Never")
    _require(
        restart_policy in ("Never", "OnFailure"),
        f"Job restartPolicy must be Never or OnFailure, got {restart_policy!r}",
        "spec.template.spec.restartPolicy",
    )


def _validate_cronjob(resource: Resource) -> None:
    schedule = resource.spec.get("schedule")
    _require(isinstance(schedule, str) and len(schedule.split()) == 5, "spec.schedule must be a 5-field cron expression", "spec.schedule")
    job_template = resource.spec.get("jobTemplate")
    _require(isinstance(job_template, dict), "spec.jobTemplate is required", "spec.jobTemplate")
    template = (job_template.get("spec") or {}).get("template")
    _require(isinstance(template, dict), "spec.jobTemplate.spec.template is required", "spec.jobTemplate.spec.template")
    _validate_pod_spec(template.get("spec", {}), "spec.jobTemplate.spec.template.spec")


_SERVICE_TYPES = {"ClusterIP", "NodePort", "LoadBalancer", "ExternalName"}


def _validate_service(resource: Resource) -> None:
    spec = resource.spec
    service_type = spec.get("type", "ClusterIP")
    _require(service_type in _SERVICE_TYPES, f"unknown Service type {service_type!r}", "spec.type")
    if service_type == "ExternalName":
        _require(bool(spec.get("externalName")), "ExternalName service needs spec.externalName", "spec.externalName")
        return
    ports = spec.get("ports")
    _require(isinstance(ports, list) and len(ports) > 0, "Service needs at least one port", "spec.ports")
    for i, port in enumerate(ports):
        _require(isinstance(port, dict), "port must be a mapping", f"spec.ports[{i}]")
        number = port.get("port")
        _require(
            isinstance(number, int) and 1 <= number <= 65535,
            f"Service port {number!r} must be an integer in [1, 65535]",
            f"spec.ports[{i}].port",
        )
        node_port = port.get("nodePort")
        if node_port is not None:
            _require(
                isinstance(node_port, int) and 30000 <= node_port <= 32767,
                f"nodePort {node_port!r} must be in [30000, 32767]",
                f"spec.ports[{i}].nodePort",
            )
    selector = spec.get("selector")
    if selector is not None:
        _require(isinstance(selector, dict) and selector, "spec.selector must be a non-empty mapping", "spec.selector")


def _validate_configmap(resource: Resource) -> None:
    data = resource.manifest.get("data", {})
    _require(isinstance(data, dict), "ConfigMap data must be a mapping", "data")
    for key, value in data.items():
        _require(isinstance(value, (str, int, float, bool)), f"ConfigMap value for {key!r} must be scalar", f"data.{key}")


def _validate_secret(resource: Resource) -> None:
    for section in ("data", "stringData"):
        data = resource.manifest.get(section, {})
        _require(isinstance(data, dict), f"Secret {section} must be a mapping", section)


def _validate_namespace(resource: Resource) -> None:  # noqa: ARG001 - shape only
    return


def _validate_pvc(resource: Resource) -> None:
    spec = resource.spec
    access_modes = spec.get("accessModes")
    _require(isinstance(access_modes, list) and access_modes, "PVC needs accessModes", "spec.accessModes")
    for mode in access_modes:
        _require(
            mode in ("ReadWriteOnce", "ReadOnlyMany", "ReadWriteMany", "ReadWriteOncePod"),
            f"invalid access mode {mode!r}",
            "spec.accessModes",
        )
    storage = ((spec.get("resources") or {}).get("requests") or {}).get("storage")
    _require(storage is not None and _valid_quantity(storage), "PVC needs spec.resources.requests.storage", "spec.resources.requests.storage")


def _validate_pv(resource: Resource) -> None:
    spec = resource.spec
    _require(_valid_quantity((spec.get("capacity") or {}).get("storage")), "PV needs spec.capacity.storage", "spec.capacity.storage")
    _require(bool(spec.get("accessModes")), "PV needs accessModes", "spec.accessModes")


def _validate_limitrange(resource: Resource) -> None:
    limits = resource.spec.get("limits")
    _require(isinstance(limits, list) and limits, "LimitRange needs spec.limits", "spec.limits")
    for i, limit in enumerate(limits):
        _require(isinstance(limit, dict) and limit.get("type"), "limit entry needs a type", f"spec.limits[{i}].type")


def _validate_resourcequota(resource: Resource) -> None:
    hard = resource.spec.get("hard")
    _require(isinstance(hard, dict) and hard, "ResourceQuota needs spec.hard", "spec.hard")


def _validate_ingress(resource: Resource) -> None:
    spec = resource.spec
    rules = spec.get("rules")
    if rules is None and spec.get("defaultBackend"):
        return
    _require(isinstance(rules, list) and rules, "Ingress needs spec.rules", "spec.rules")
    for i, rule in enumerate(rules):
        http = rule.get("http") if isinstance(rule, dict) else None
        _require(isinstance(http, dict), "Ingress rule needs http section", f"spec.rules[{i}].http")
        paths = http.get("paths")
        _require(isinstance(paths, list) and paths, "Ingress rule needs http.paths", f"spec.rules[{i}].http.paths")
        for j, path in enumerate(paths):
            _require(isinstance(path, dict), "path must be a mapping", f"spec.rules[{i}].http.paths[{j}]")
            backend = path.get("backend")
            _require(isinstance(backend, dict), "path needs a backend", f"spec.rules[{i}].http.paths[{j}].backend")
            # networking.k8s.io/v1 dropped serviceName/servicePort — report this
            # first, matching the strict-decoding error a real API server gives
            # for the legacy fields (the dataset's debugging problems rely on it).
            _require(
                "serviceName" not in backend and "servicePort" not in backend,
                "networking.k8s.io/v1 Ingress must use backend.service.name/port",
                f"spec.rules[{i}].http.paths[{j}].backend",
            )
            _require(
                path.get("pathType") in ("Prefix", "Exact", "ImplementationSpecific"),
                "Ingress path needs a valid pathType (Prefix/Exact/ImplementationSpecific)",
                f"spec.rules[{i}].http.paths[{j}].pathType",
            )
            service = backend.get("service")
            _require(isinstance(service, dict) and service.get("name"), "backend.service.name is required", f"spec.rules[{i}].http.paths[{j}].backend.service.name")
            port = service.get("port")
            _require(
                isinstance(port, dict) and ("number" in port or "name" in port),
                "backend.service.port.number or .name is required",
                f"spec.rules[{i}].http.paths[{j}].backend.service.port",
            )


def _validate_networkpolicy(resource: Resource) -> None:
    _require(isinstance(resource.spec.get("podSelector"), dict), "NetworkPolicy needs spec.podSelector", "spec.podSelector")


def _validate_hpa(resource: Resource) -> None:
    spec = resource.spec
    target = spec.get("scaleTargetRef")
    _require(isinstance(target, dict) and target.get("kind") and target.get("name"), "HPA needs spec.scaleTargetRef", "spec.scaleTargetRef")
    max_replicas = spec.get("maxReplicas")
    _require(isinstance(max_replicas, int) and max_replicas >= 1, "HPA needs spec.maxReplicas >= 1", "spec.maxReplicas")
    min_replicas = spec.get("minReplicas", 1)
    _require(isinstance(min_replicas, int) and 1 <= min_replicas <= max_replicas, "spec.minReplicas must be in [1, maxReplicas]", "spec.minReplicas")


_RBAC_VERBS = {"get", "list", "watch", "create", "update", "patch", "delete", "deletecollection", "*", "bind", "escalate", "impersonate", "use"}


def _validate_role_like(resource: Resource) -> None:
    rules = resource.manifest.get("rules")
    _require(isinstance(rules, list) and rules, f"{resource.kind} needs rules", "rules")
    for i, rule in enumerate(rules):
        _require(isinstance(rule, dict), "rule must be a mapping", f"rules[{i}]")
        verbs = rule.get("verbs")
        _require(isinstance(verbs, list) and verbs, "rule needs verbs", f"rules[{i}].verbs")
        for verb in verbs:
            _require(str(verb) in _RBAC_VERBS, f"unknown RBAC verb {verb!r}", f"rules[{i}].verbs")


def _validate_binding_like(resource: Resource) -> None:
    role_ref = resource.manifest.get("roleRef")
    _require(isinstance(role_ref, dict), f"{resource.kind} needs roleRef", "roleRef")
    _require(role_ref.get("kind") in ("Role", "ClusterRole"), "roleRef.kind must be Role or ClusterRole", "roleRef.kind")
    _require(bool(role_ref.get("name")), "roleRef.name is required", "roleRef.name")
    _require(
        role_ref.get("apiGroup") == "rbac.authorization.k8s.io",
        "roleRef.apiGroup must be rbac.authorization.k8s.io",
        "roleRef.apiGroup",
    )
    subjects = resource.manifest.get("subjects")
    _require(isinstance(subjects, list) and subjects, f"{resource.kind} needs subjects", "subjects")
    for i, subject in enumerate(subjects):
        _require(isinstance(subject, dict), "subject must be a mapping", f"subjects[{i}]")
        _require(subject.get("kind") in ("User", "Group", "ServiceAccount"), "subject.kind must be User, Group or ServiceAccount", f"subjects[{i}].kind")
        _require(bool(subject.get("name")), "subject.name is required", f"subjects[{i}].name")
        if subject.get("kind") in ("User", "Group"):
            _require(
                subject.get("apiGroup") == "rbac.authorization.k8s.io",
                "User/Group subjects need apiGroup rbac.authorization.k8s.io",
                f"subjects[{i}].apiGroup",
            )


def _validate_serviceaccount(resource: Resource) -> None:  # noqa: ARG001
    return


def _validate_storageclass(resource: Resource) -> None:
    _require(bool(resource.manifest.get("provisioner")), "StorageClass needs a provisioner", "provisioner")


def _validate_priorityclass(resource: Resource) -> None:
    _require(isinstance(resource.manifest.get("value"), int), "PriorityClass needs an integer value", "value")


def _validate_endpoints(resource: Resource) -> None:  # noqa: ARG001
    return


def _validate_node(resource: Resource) -> None:  # noqa: ARG001
    return


_VALIDATORS: dict[str, Callable[[Resource], None]] = {
    "Pod": _validate_pod,
    "Deployment": _validate_deployment,
    "DaemonSet": _validate_daemonset,
    "StatefulSet": _validate_statefulset,
    "ReplicaSet": _validate_replicaset,
    "Job": _validate_job,
    "CronJob": _validate_cronjob,
    "Service": _validate_service,
    "Endpoints": _validate_endpoints,
    "ConfigMap": _validate_configmap,
    "Secret": _validate_secret,
    "Namespace": _validate_namespace,
    "Node": _validate_node,
    "ServiceAccount": _validate_serviceaccount,
    "PersistentVolume": _validate_pv,
    "PersistentVolumeClaim": _validate_pvc,
    "LimitRange": _validate_limitrange,
    "ResourceQuota": _validate_resourcequota,
    "Ingress": _validate_ingress,
    "NetworkPolicy": _validate_networkpolicy,
    "HorizontalPodAutoscaler": _validate_hpa,
    "Role": _validate_role_like,
    "ClusterRole": _validate_role_like,
    "RoleBinding": _validate_binding_like,
    "ClusterRoleBinding": _validate_binding_like,
    "StorageClass": _validate_storageclass,
    "PriorityClass": _validate_priorityclass,
}


def validate_resource(resource: Resource) -> None:
    """Validate a resource, raising :class:`ValidationError` on the first problem.

    Istio CRDs are validated by :mod:`repro.istiosim` and registered into
    this table at import time via :func:`register_validator`.
    """

    _validate_api_version(resource)
    _validate_metadata(resource)
    validator = _VALIDATORS.get(resource.kind)
    if validator is not None:
        validator(resource)


def register_validator(kind: str, validator: Callable[[Resource], None]) -> None:
    """Register (or override) the validator for a kind (used by istiosim)."""

    _VALIDATORS[kind] = validator
