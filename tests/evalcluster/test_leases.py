"""Cluster fault tolerance: job leases and re-enqueue on worker death."""

from __future__ import annotations

import pytest

from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.master import EvaluationJob, Master
from repro.evalcluster.registry_cache import PullThroughCache
from repro.evalcluster.runtime import run_jobs
from repro.evalcluster.worker import RealExecution, Worker


class DyingWorker(Worker):
    """Claims a job and then vanishes without reporting — a VM crash
    between claim and report, the exact window leases exist for."""

    def _run_job(self, job):
        self.claimed_job_id = job.job_id


def _worker(cls, index, master, events):
    return cls(
        worker_id=f"worker-{index:03d}",
        master=master,
        events=events,
        internet=SharedLink(1000.0),
        shared_cache=PullThroughCache(),
        boot_seconds=0.0,
        runner=RealExecution(),
    )


def test_dead_workers_job_is_reenqueued_and_completed():
    casualties = []

    def factory(index, master, events):
        if index == 0:
            worker = _worker(DyingWorker, index, master, events)
            casualties.append(worker)
            return worker
        return _worker(Worker, index, master, events)

    jobs = [
        EvaluationJob(job_id=f"job-{i}", problem_id=f"p-{i}", payload=lambda i=i: i * 10)
        for i in range(8)
    ]
    reports = run_jobs(jobs, num_workers=3, lease_seconds=60.0, worker_factory=factory)

    assert all(report.passed for report in reports.values())
    assert [reports[f"job-{i}"].result for i in range(8)] == [i * 10 for i in range(8)]
    # The orphaned job was completed by a survivor, not the casualty.
    orphan = casualties[0].claimed_job_id
    assert reports[orphan].worker_id != casualties[0].worker_id


def test_poisonous_job_is_reenqueued_exactly_once_then_failed():
    """A job that kills every worker that touches it cannot starve the run:
    one second chance, then the master records it as failed."""

    def all_dying(index, master, events):
        return _worker(DyingWorker, index, master, events)

    reports = run_jobs(
        [EvaluationJob(job_id="poison", problem_id="p-bad", payload=lambda: 1)],
        num_workers=2,
        lease_seconds=30.0,
        worker_factory=all_dying,
    )
    assert not reports["poison"].passed
    assert "lease expired twice" in reports["poison"].result
    assert reports["poison"].worker_id == "master-reaper"


def test_runs_without_leases_are_unchanged():
    payload_jobs = [
        EvaluationJob(job_id=f"j{i}", problem_id=f"p{i}", payload=lambda i=i: i) for i in range(6)
    ]
    assert [
        run_jobs(payload_jobs, num_workers=2)[f"j{i}"].result for i in range(6)
    ] == list(range(6))


def test_master_claim_records_and_report_releases_lease():
    master = Master(lease_seconds=30.0)
    master.submit([EvaluationJob(job_id="j1", problem_id="p1")])
    job = master.claim("w1", now=5.0)
    assert job.job_id == "j1"
    assert master.next_lease_expiry() == 35.0
    master.report("j1", "w1", finished_at=10.0, passed=True)
    assert master.next_lease_expiry() is None
    assert master.reap_expired(now=100.0) == []


def test_master_reap_before_deadline_is_a_noop():
    master = Master(lease_seconds=30.0)
    master.submit([EvaluationJob(job_id="j1", problem_id="p1")])
    master.claim("w1", now=0.0)
    assert master.reap_expired(now=29.9) == []
    assert master.reap_expired(now=30.0) == ["j1"]
    # Re-enqueued: claimable again with a fresh lease.
    assert master.claim("w2", now=31.0).job_id == "j1"
    assert master.next_lease_expiry() == 61.0


def test_master_rejects_invalid_lease():
    with pytest.raises(ValueError):
        Master(lease_seconds=0.0)


def test_lease_free_claims_track_no_lease():
    master = Master()
    master.submit([EvaluationJob(job_id="j1", problem_id="p1")])
    master.claim()
    assert master.next_lease_expiry() is None


def test_stale_report_from_lease_loser_is_dropped():
    """A late-but-alive worker whose lease expired must not overwrite the
    report of the worker the job was re-assigned to."""

    master = Master(lease_seconds=30.0)
    master.submit([EvaluationJob(job_id="j1", problem_id="p1")])
    master.claim("worker-A", now=0.0)
    master.reap_expired(now=30.0)  # A lost the lease; job re-enqueued
    master.claim("worker-B", now=31.0)

    master.report("j1", "worker-A", finished_at=32.0, passed=True, result="stale")
    assert master.result_of("j1") is None  # dropped

    master.report("j1", "worker-B", finished_at=33.0, passed=True, result="fresh")
    assert master.result_of("j1") == "fresh"
    assert master.reports()["j1"].worker_id == "worker-B"


def test_lease_seconds_reaches_cluster_executor_through_config():
    from repro.core import BenchmarkConfig
    from repro.pipeline.executors import resolve_executor

    config = BenchmarkConfig(executor="cluster", lease_seconds=45.0)
    executor = resolve_executor(config.executor, 2, lease_seconds=config.lease_seconds)
    assert executor.lease_seconds == 45.0
    with pytest.raises(ValueError):
        BenchmarkConfig(lease_seconds=0.0)
