"""Answer perturbation operators used by the simulated models.

A simulated model starts from the labeled reference YAML of the problem and
derives an answer of a chosen quality class:

* :func:`correct_answer` — a functionally correct answer: labels stripped,
  wildcard-labeled values optionally renamed and set-labeled values
  substituted (still passes the unit test and the key-value wildcard match
  but not necessarily the exact matches),
* :func:`near_miss_answer` — valid YAML of the right kind with one or more
  *critical* values (values the unit test asserts on) altered, so the unit
  test fails (failure category 5),
* :func:`wrong_kind_answer` — valid YAML with an incorrect ``kind``
  (category 4),
* :func:`incomplete_answer` — a truncated, non-parsable fragment that still
  contains the ``kind`` field (category 3),
* :func:`prose_answer` — a natural-language reply without YAML (category 2),
* :func:`empty_answer` — an empty or sub-3-line reply (category 1),
* :func:`wrap_response` — formatting noise (fences, "Here is..." prose,
  ``<code>`` tags) exercising the post-processing policies.
"""

from __future__ import annotations

import re

from repro.dataset.problem import Problem
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG
from repro.yamlkit.labels import strip_labels

__all__ = [
    "correct_answer",
    "near_miss_answer",
    "wrong_kind_answer",
    "incomplete_answer",
    "prose_answer",
    "empty_answer",
    "generic_answer",
    "wrap_response",
    "critical_values",
    "restyle",
]

_WILDCARD_RE = re.compile(r"^(\s*(?:- )?[\w.\"@/-]+:\s*)(.+?)\s*#\s*\*\s*$")
_SET_RE = re.compile(r"^(\s*(?:- )?[\w.\"@/-]+:\s*)(.+?)\s*#\s*v\s+in\s+(\[.*\])\s*$")
_SCALAR_LINE_RE = re.compile(r"^(\s*(?:- )?[\w.\"@/-]+:\s+)([^\s#][^#]*?)\s*$")

_ALT_KINDS = ["ConfigMap", "Pod", "Deployment", "Service", "ReplicationController", "DaemonSet", "Job"]


def critical_values(problem: Problem) -> list[str]:
    """Values the unit-test program asserts on, as strings.

    Mutating an occurrence of one of these in the reference answer is
    guaranteed (modulo duplicates) to make the functional test fail, which
    is how :func:`near_miss_answer` realises failure category 5.
    """

    values: list[str] = []
    for step in problem.unit_test.steps:
        if isinstance(step, S.AssertJsonPath):
            if step.expected is not None:
                values.append(str(step.expected))
            if step.contains is not None:
                values.append(str(step.contains))
            values.extend(str(v) for v in step.one_of)
        elif isinstance(step, S.AssertDescribeContains):
            values.extend(str(step.substring).split(":"))
        elif isinstance(step, S.AssertServiceReachable):
            values.append(str(step.name))
        elif isinstance(step, S.AssertHostPortReachable):
            values.append(str(step.host_port))
        elif isinstance(step, S.AssertEnvoyListenerPort):
            values.append(str(step.port))
        elif isinstance(step, S.AssertEnvoyRoute):
            values.append(str(step.cluster))
        elif isinstance(step, S.AssertEnvoyClusterLb):
            values.append(str(step.policy))
        elif isinstance(step, S.AssertEnvoyClusterEndpoints):
            values.append(str(step.port))
        elif isinstance(step, S.AssertIstioLbPolicy):
            values.append(str(step.policy))
        elif isinstance(step, S.AssertIstioSubsetLabels):
            values.extend(str(v) for v in step.labels.values())
        elif isinstance(step, S.AssertIstioDestination):
            values.append(str(step.host))
        elif isinstance(step, S.AssertGatewayServer):
            values.append(str(step.port))
        elif isinstance(step, S.AssertExists):
            values.append(str(step.name))
        elif isinstance(step, S.WaitFor) and step.name:
            values.append(str(step.name))
    # Deduplicate preserving order; drop trivially short values that would
    # match everywhere (e.g. "80" still kept — ports are meaningful).
    seen: set[str] = set()
    unique = []
    for value in values:
        if value and value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


def _perturb_critical(value: str, rng: DeterministicRNG) -> str:
    """Replace a unit-test-critical value with one that cannot still satisfy it.

    Unlike :func:`_perturb_scalar` the replacement never *contains* the
    original value, so substring-based assertions (``contains`` checks in
    the unit tests) fail as intended.
    """

    value = value.strip().strip('"')
    if value.isdigit():
        return str(int(value) + 1)
    match = re.match(r"^(\d+)(m|Mi|Gi|Ki)$", value)
    if match:
        number, unit = match.groups()
        return f"{int(number) * 2 + 1}{unit}"
    if ":" in value and "/" not in value.split(":")[0]:
        repo, _, _ = value.partition(":")
        replacement_repo = "httpd" if repo != "httpd" else "nginx"
        return f"{replacement_repo}:latest"
    upper_choices = ["RANDOM", "ROUND_ROBIN", "PASSTHROUGH"]
    if value.isupper() and value not in upper_choices:
        return rng.choice(upper_choices)
    # Generic string: an unrelated token of similar length.
    return f"wrong-{rng.randint(10, 99)}"


def _perturb_scalar(value: str, rng: DeterministicRNG) -> str:
    """Produce a plausible but different value for a scalar."""

    value = value.strip().strip('"')
    if value.isdigit():
        number = int(value)
        delta = rng.choice([1, 2, 10, 100, 1000])
        return str(max(1, number + delta if rng.bernoulli(0.5) else max(1, number - delta)))
    if re.match(r"^\d+(m|Mi|Gi|Ki)$", value):
        number = int(re.match(r"^\d+", value).group(0))  # type: ignore[union-attr]
        unit = value[len(str(number)) :]
        return f"{max(1, number * 2)}{unit}"
    if ":" in value and "/" not in value.split(":")[0]:
        # image reference: change the tag
        repo, _, _ = value.partition(":")
        return f"{repo}:{rng.choice(['1.0', 'stable', 'v2', 'alpine'])}"
    suffix = rng.choice(["-new", "-v2", "-main", "-prod", "-x"])
    return f"{value}{suffix}"


# ---------------------------------------------------------------------------
# Restyling: how far a model's formatting drifts from the reference
# ---------------------------------------------------------------------------

# Harmless extra fields a model may add without changing behaviour.  The
# injection sites are recognised structurally (a dict with an ``image`` key
# is a container, a dict with a ``name`` key directly under ``metadata`` is
# object metadata, ...).
_EXTRA_CONTAINER_FIELDS = [("imagePullPolicy", "IfNotPresent"), ("imagePullPolicy", "Always")]
_EXTRA_METADATA_ANNOTATIONS = [
    {"app.kubernetes.io/managed-by": "manual"},
    {"description": "generated configuration"},
]
# Optional keys a sloppy (already failing) answer may simply omit.
_DROPPABLE_KEYS = {"resources", "annotations", "nodeSelector", "strategy", "connect_timeout"}


def _shuffle_mapping_keys(value, rng: DeterministicRNG, probability: float, depth: int = 0):
    """Recursively reorder mapping keys (list order is preserved).

    Top-level keys are left in place: real model answers virtually always
    start with ``apiVersion``/``kind`` (or ``static_resources``), and the
    post-processing policies rely on that line marking the document start.
    """

    if isinstance(value, dict):
        keys = list(value.keys())
        if depth > 0 and len(keys) > 1 and rng.bernoulli(probability):
            keys = rng.shuffle(keys)
        return {key: _shuffle_mapping_keys(value[key], rng, probability, depth + 1) for key in keys}
    if isinstance(value, list):
        return [_shuffle_mapping_keys(item, rng, probability, depth + 1) for item in value]
    return value


def _inject_extra_fields(value, rng: DeterministicRNG, probability: float, parent_key: str = "") -> bool:
    """Add harmless extra fields in place; returns True when anything was added."""

    added = False
    if isinstance(value, dict):
        if "image" in value and "name" in value and rng.bernoulli(probability):
            key, extra = rng.choice(_EXTRA_CONTAINER_FIELDS)
            value.setdefault(key, extra)
            added = True
        if parent_key == "metadata" or ("name" in value and "labels" in value and parent_key == ""):
            if rng.bernoulli(probability * 0.6) and "annotations" not in value:
                value["annotations"] = dict(rng.choice(_EXTRA_METADATA_ANNOTATIONS))
                added = True
        for key, child in list(value.items()):
            added = _inject_extra_fields(child, rng, probability, parent_key=str(key)) or added
    elif isinstance(value, list):
        for item in value:
            added = _inject_extra_fields(item, rng, probability, parent_key=parent_key) or added
    return added


def _drop_optional_keys(value, rng: DeterministicRNG, probability: float) -> None:
    """Remove droppable optional keys in place (used for failing answers only)."""

    if isinstance(value, dict):
        for key in list(value.keys()):
            if key in _DROPPABLE_KEYS and rng.bernoulli(probability):
                del value[key]
                continue
            _drop_optional_keys(value[key], rng, probability)
    elif isinstance(value, list):
        for item in value:
            _drop_optional_keys(item, rng, probability)


def restyle(
    yaml_text: str,
    rng: DeterministicRNG,
    strength: float,
    allow_drops: bool = False,
    force_structural_change: bool = False,
) -> str:
    """Re-render YAML the way a different author would write it.

    ``strength`` in [0, 1] controls how much the output drifts from the
    input: key reordering, re-quoting via a round-trip dump, harmless extra
    fields, and (``allow_drops``) omission of optional keys.  Values are
    never changed, so a functionally correct input stays correct.  With
    ``force_structural_change`` at least one extra field is injected, which
    guarantees the result is no longer an exact key-value match.
    """

    import yaml as _yaml

    try:
        documents = [d for d in _yaml.safe_load_all(yaml_text) if d is not None]
    except _yaml.YAMLError:
        return yaml_text
    if not documents or not all(isinstance(d, dict) for d in documents):
        return yaml_text

    rendered: list[str] = []
    for document in documents:
        added = _inject_extra_fields(document, rng, probability=min(0.9, 0.35 + strength * 0.5))
        if force_structural_change and not added:
            metadata = document.get("metadata")
            if isinstance(metadata, dict):
                metadata.setdefault("annotations", dict(rng.choice(_EXTRA_METADATA_ANNOTATIONS)))
            else:
                document.setdefault("metadata", {"annotations": dict(rng.choice(_EXTRA_METADATA_ANNOTATIONS))})
        if allow_drops:
            _drop_optional_keys(document, rng, probability=min(0.8, strength * 0.6))
        document = _shuffle_mapping_keys(document, rng, probability=min(0.85, strength))
        rendered.append(_yaml.safe_dump(document, sort_keys=False, default_flow_style=False))
    return "---\n".join(rendered)


# ---------------------------------------------------------------------------
# Correct answers
# ---------------------------------------------------------------------------

def correct_answer(
    problem: Problem,
    rng: DeterministicRNG,
    exact_text: bool = False,
    exact_keys: bool = False,
    style_divergence: float = 0.3,
) -> str:
    """Produce a functionally correct answer.

    ``exact_text`` reproduces the reference byte-for-byte (labels stripped).
    ``exact_keys`` keeps every value identical but re-renders the YAML
    (different formatting, same dictionaries).  Otherwise wildcard-labeled
    values are renamed and set-labeled values swapped for another allowed
    option, which is still functionally correct but no longer an exact
    key-value match.
    """

    plain = problem.reference_plain()
    if exact_text:
        return plain
    if exact_keys:
        # Same dictionaries, different rendering: a sorted-key round-trip
        # changes field order and quoting but not a single value.
        import yaml as _yaml

        documents = [d for d in _yaml.safe_load_all(plain) if d is not None]
        return "---\n".join(_yaml.safe_dump(d, sort_keys=True, default_flow_style=False) for d in documents)

    lines = problem.reference_yaml.splitlines()
    out: list[str] = []
    renamed_wildcard = False
    for line in lines:
        set_match = _SET_RE.match(line)
        if set_match:
            prefix, _, options_text = set_match.groups()
            try:
                import ast

                options = [str(o) for o in ast.literal_eval(options_text)]
            except (ValueError, SyntaxError):
                options = []
            if options and rng.bernoulli(0.5):
                out.append(f"{prefix}{rng.choice(options)}")
                renamed_wildcard = True
            else:
                out.append(_SET_RE.sub(r"\1\2", line).rstrip())
            continue
        wildcard_match = _WILDCARD_RE.match(line)
        if wildcard_match and rng.bernoulli(0.6):
            prefix, value = wildcard_match.groups()
            out.append(f"{prefix}{_perturb_scalar(value, rng)}")
            renamed_wildcard = True
            continue
        out.append(_strip_label(line))
    varied = "\n".join(out).rstrip() + "\n"
    # Correct-but-not-exact answers always differ structurally from the
    # reference (extra harmless fields or renamed wildcard values), matching
    # the paper's observation that key-value exact matches are rare even for
    # functionally correct answers.
    return restyle(
        varied,
        rng,
        strength=style_divergence,
        allow_drops=False,
        force_structural_change=not renamed_wildcard,
    )


def _strip_label(line: str) -> str:
    line = re.sub(r"#\s*\*\s*$", "", line)
    line = re.sub(r"#\s*v\s+in\s+\[.*\]\s*$", "", line)
    return line.rstrip()


# ---------------------------------------------------------------------------
# Failure classes
# ---------------------------------------------------------------------------

def near_miss_answer(
    problem: Problem,
    rng: DeterministicRNG,
    intensity: int = 1,
    style_divergence: float = 0.4,
) -> str:
    """Valid YAML of the right kind with critical values altered (category 5)."""

    text = strip_labels(problem.reference_yaml)
    targets = critical_values(problem)
    if targets:
        chosen = rng.sample(targets, min(len(targets), max(1, intensity)))
        for target in chosen:
            replacement = _perturb_critical(target, rng)
            # Replace whole-token occurrences only; fall back to plain
            # replacement when the value contains regex specials.
            pattern = re.compile(rf"(?<![\w.-]){re.escape(target)}(?![\w.-])")
            text, count = pattern.subn(replacement, text)
            if count == 0:
                text = text.replace(target, replacement)
    # Additional cosmetic damage for weaker models: mutate extra scalars.
    if intensity > 1:
        lines = text.splitlines()
        scalar_indices = [i for i, line in enumerate(lines) if _SCALAR_LINE_RE.match(line)]
        for index in rng.sample(scalar_indices, min(len(scalar_indices), intensity - 1)):
            match = _SCALAR_LINE_RE.match(lines[index])
            if match:
                prefix, value = match.groups()
                lines[index] = f"{prefix}{_perturb_scalar(value, rng)}"
        text = "\n".join(lines)
    # Failing answers drift further from the reference formatting: they are
    # written "from memory", so field order, quoting and optional fields all
    # differ, which is what keeps their BLEU well below the correct answers'.
    text = restyle(text, rng, strength=min(1.0, style_divergence + 0.2), allow_drops=True)
    return text.rstrip() + "\n"


_GENERIC_TEMPLATES: dict[str, str] = {
    "Pod": """apiVersion: v1
kind: Pod
metadata:
  name: {name}
  labels:
    app: {name}
spec:
  containers:
  - name: {name}
    image: {image}
    ports:
    - containerPort: 80
""",
    "Deployment": """apiVersion: apps/v1
kind: Deployment
metadata:
  name: {name}
spec:
  replicas: 1
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: {name}
        image: {image}
""",
    "DaemonSet": """apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: {name}
spec:
  selector:
    matchLabels:
      app: {name}
  template:
    metadata:
      labels:
        app: {name}
    spec:
      containers:
      - name: {name}
        image: {image}
""",
    "Service": """apiVersion: v1
kind: Service
metadata:
  name: {name}
spec:
  selector:
    app: {name}
  ports:
  - port: 80
    targetPort: 8080
""",
    "Job": """apiVersion: batch/v1
kind: Job
metadata:
  name: {name}
spec:
  template:
    spec:
      restartPolicy: Never
      containers:
      - name: {name}
        image: busybox
        command: ["echo", "done"]
""",
    "ConfigMap": """apiVersion: v1
kind: ConfigMap
metadata:
  name: {name}
data:
  key: value
""",
    "EnvoyConfig": """static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: 80
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
  clusters:
  - name: service_default
    connect_timeout: 1s
    type: STRICT_DNS
""",
}


def generic_answer(problem: Problem, rng: DeterministicRNG) -> str:
    """A plausible but question-agnostic manifest of (roughly) the right kind.

    Weak models frequently produce a memorised boiler-plate configuration
    that ignores the specifics of the question: correct ``kind``, wrong
    everything else.  Those answers are valid YAML, fail the unit test, and
    share little text with the reference, which is what drives the very low
    BLEU / edit-distance scores of the smallest models in Table 4.
    """

    kind = str(problem.metadata.get("primary_kind", "Pod"))
    template = _GENERIC_TEMPLATES.get(kind)
    if template is None:
        # Fall back to reusing the expected kind on a generic Deployment-like body.
        template = _GENERIC_TEMPLATES["Pod"].replace("kind: Pod", f"kind: {kind}")
    name = rng.choice(["my-app", "example", "demo-app", "test-app", "sample"])
    image = rng.choice(["nginx", "nginx:latest", "busybox", "ubuntu"])
    return template.format(name=name, image=image)


def wrong_kind_answer(problem: Problem, rng: DeterministicRNG) -> str:
    """Valid YAML whose ``kind`` does not match the expected one (category 4)."""

    text = strip_labels(problem.reference_yaml)
    match = re.search(r"^kind:\s*(\S+)\s*$", text, flags=re.MULTILINE)
    if not match:
        # Envoy configurations have no kind; emit a Kubernetes-shaped answer
        # instead, which is just as wrong.
        return (
            "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: envoy-config\n"
            "data:\n  envoy.yaml: |\n    # configuration omitted\n"
        )
    current = match.group(1)
    alternatives = [k for k in _ALT_KINDS if k != current]
    return text.replace(f"kind: {current}", f"kind: {rng.choice(alternatives)}", 1)


def incomplete_answer(problem: Problem, rng: DeterministicRNG, base_text: str | None = None) -> str:
    """A truncated fragment: contains ``kind`` but is not a complete document.

    ``base_text`` overrides the starting YAML; weak models often truncate a
    memorised generic manifest rather than something resembling the
    reference.
    """

    text = strip_labels(problem.reference_yaml) if base_text is None else base_text
    lines = [line for line in text.splitlines() if line.strip()]
    keep = max(4, int(len(lines) * rng.uniform(0.3, 0.6)))
    fragment = lines[:keep]
    # Break the indentation of the final line so the fragment does not parse.
    fragment.append("   - broken: [unclosed")
    return "\n".join(fragment) + "\n"


def prose_answer(problem: Problem, rng: DeterministicRNG) -> str:
    """A natural-language reply with no YAML payload (category 2)."""

    kind = problem.metadata.get("primary_kind", "configuration")
    openers = [
        f"To accomplish this you would typically create a {kind} and configure it according to your needs.",
        f"As an AI language model, I recommend consulting the official documentation for {kind} objects.",
        f"The requested {kind} requires several fields; make sure to set the metadata and spec sections appropriately.",
        "I'm sorry, but I need more details about your cluster before I can produce a configuration.",
    ]
    sentences = [rng.choice(openers)]
    if rng.bernoulli(0.6):
        sentences.append(
            "You should also verify the namespace exists and that RBAC permissions allow the operation."
        )
    return " ".join(sentences) + "\n"


def empty_answer(problem: Problem, rng: DeterministicRNG) -> str:
    """An empty or sub-3-line answer (category 1)."""

    del problem
    choices = ["", "\n", "```\n```\n", "yaml\n", "apiVersion: v1\n"]
    return rng.choice(choices)


# ---------------------------------------------------------------------------
# Formatting noise
# ---------------------------------------------------------------------------

def wrap_response(yaml_text: str, rng: DeterministicRNG, chattiness: float) -> str:
    """Optionally wrap a YAML payload in prose / fences / code tags.

    ``chattiness`` is the probability that the model ignores the "no
    markdown" instruction and decorates its answer.
    """

    if not yaml_text.strip() or not rng.bernoulli(chattiness):
        return yaml_text
    style = rng.choice(["fence", "here", "code_tag", "fence_prose", "solution"])
    if style == "fence":
        return f"```yaml\n{yaml_text}```\n"
    if style == "here":
        return f"Here is the YAML configuration you asked for:\n{yaml_text}"
    if style == "code_tag":
        return f"<code>\n{yaml_text}</code>\n"
    if style == "solution":
        return f"START SOLUTION\n{yaml_text}END SOLUTION\n"
    return (
        "Sure! Here is the configuration that satisfies the requirements:\n"
        f"```yaml\n{yaml_text}```\n"
        "Let me know if you need any adjustments to the resource."
    )
