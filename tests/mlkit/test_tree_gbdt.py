"""Tests for the regression tree and gradient-boosted classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlkit.gbdt import GradientBoostingClassifier
from repro.mlkit.metrics import accuracy, roc_auc
from repro.mlkit.tree import RegressionTree


def _separable_data(n: int = 300, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0.8).astype(int)
    return X, y


def test_regression_tree_fits_piecewise_constant_signal():
    rng = np.random.default_rng(1)
    X = rng.random((400, 1))
    y = np.where(X[:, 0] > 0.5, 2.0, -1.0)
    tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(X, y)
    predictions = tree.predict(np.array([[0.1], [0.9]]))
    assert predictions[0] == pytest.approx(-1.0, abs=0.2)
    assert predictions[1] == pytest.approx(2.0, abs=0.2)


def test_regression_tree_depth_zero_returns_mean():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([1.0, 2.0, 3.0, 4.0])
    tree = RegressionTree(max_depth=0).fit(X, y)
    assert tree.predict(X) == pytest.approx(np.full(4, 2.5))


def test_regression_tree_respects_min_samples_leaf():
    X = np.arange(8, dtype=float).reshape(-1, 1)
    y = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=float)
    tree = RegressionTree(max_depth=3, min_samples_leaf=4).fit(X, y)

    def leaves(node):
        if node.is_leaf:
            return [node]
        return leaves(node.left) + leaves(node.right)

    assert all(leaf.n_samples >= 4 for leaf in leaves(tree.root))


def test_regression_tree_input_validation():
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros(5), np.zeros(5))
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(RuntimeError):
        RegressionTree().predict(np.zeros((2, 2)))


def test_gbdt_learns_separable_problem():
    X, y = _separable_data()
    clf = GradientBoostingClassifier(n_estimators=40, learning_rate=0.2, max_depth=3).fit(X, y)
    assert accuracy(y, clf.predict(X)) > 0.9
    assert roc_auc(y, clf.predict_proba(X)) > 0.95


def test_gbdt_probabilities_are_probabilities():
    X, y = _separable_data(150)
    clf = GradientBoostingClassifier(n_estimators=20).fit(X, y)
    proba = clf.predict_proba(X)
    assert np.all(proba >= 0) and np.all(proba <= 1)


def test_gbdt_rejects_non_binary_labels():
    with pytest.raises(ValueError):
        GradientBoostingClassifier().fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))


def test_gbdt_requires_fit_before_predict():
    with pytest.raises(RuntimeError):
        GradientBoostingClassifier().predict_proba(np.zeros((2, 2)))


def test_gbdt_feature_importances_identify_informative_feature():
    X, y = _separable_data(500)
    clf = GradientBoostingClassifier(n_estimators=30, max_depth=2).fit(X, y)
    importances = clf.feature_importances()
    assert importances.shape == (3,)
    assert importances[0] == max(importances)  # feature 0 drives the label


def test_gbdt_is_deterministic_given_random_state():
    X, y = _separable_data(200)
    a = GradientBoostingClassifier(n_estimators=15, subsample=0.7, random_state=3).fit(X, y)
    b = GradientBoostingClassifier(n_estimators=15, subsample=0.7, random_state=3).fit(X, y)
    assert np.allclose(a.predict_proba(X), b.predict_proba(X))
