"""Deterministic fault injection for chaos testing the fleet.

A distributed run fails in ways unit tests rarely exercise: a worker is
SIGKILLed between claim and report, the store process dies and restarts,
a heartbeat freezes while its job grinds on, a frame is torn on the wire.
The fleet handles all of these — but "handles" is only a fact if failure
is a *first-class, testable input*, not an accident discovered in CI
flakes.  This module makes it one:

* :class:`FaultSpec` — one scripted fault: *where* (a ``site`` string a
  call site names), *what* (a ``kind`` the call site interprets), *when*
  (the ``after``-th matching occurrence, for ``times`` consecutive
  occurrences), and optionally *which* (a ``match`` substring filter on
  the occurrence detail — a job id, a problem id, a command name).
* :class:`FaultPlan` — an immutable, seeded script of specs.  The seed
  drives the deterministic jitter of delay faults; nothing in a plan ever
  consults the wall clock or an unseeded RNG, so the same plan injects
  the same faults at the same logical points on every run.  Plans
  round-trip through JSON (:meth:`FaultPlan.to_json`) so they can cross
  process boundaries on a worker's command line.
* :class:`FaultInjector` — the runtime half: call sites report each
  occurrence through :meth:`FaultInjector.fire` and act on the spec it
  returns (kill themselves, drop a connection, sleep, skip a heartbeat).
  Every fired fault is pushed through the injector's ``log`` callback, so
  injected chaos lands in the same JSONL event stream as the organic
  claims/requeues it provokes.

Call sites currently wired (see :mod:`repro.evalcluster.fleet` and
:mod:`repro.llm.remote`):

====================== ============================== =========================
site                   detail                         kinds acted on
====================== ============================== =========================
``worker.claim``       job id                         ``kill``, ``delay``
``worker.execute``     problem id (or job id)         ``kill``, ``delay``
``worker.generate``    problem id                     ``kill``, ``delay``
``worker.heartbeat``   worker id                      ``freeze``, ``delay``
``remote.call``        command name                   ``drop``, ``corrupt``,
                                                      ``delay``
``server.command``     command name                   ``drop``, ``delay``
``coordinator.sync``   ``""``                         ``restart``, ``delay``
``endpoint.request``   problem id                     ``transient``, ``delay``
====================== ============================== =========================

The injector is intentionally dumb: it decides *whether* a fault fires,
never *how* — the call site owns the failure semantics, so injected
faults travel exactly the code paths real ones do.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.utils.rng import DeterministicRNG

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "null_injector",
]

#: Every kind a shipped call site interprets; an unknown kind is legal (a
#: custom call site may define its own) but these are the documented ones.
FAULT_KINDS: tuple[str, ...] = (
    "kill",  # the process SIGKILLs itself (a power cut, an OOM kill)
    "drop",  # the connection is dropped before the command is sent
    "corrupt",  # a malformed frame is written to the wire
    "delay",  # the occurrence sleeps `seconds` (plus seeded jitter) first
    "freeze",  # the heartbeat is silently skipped (the worker looks dead)
    "restart",  # the store server crashes and restarts from its journal
    "transient",  # a live endpoint raises TransientEndpointError
)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``after`` is 1-based: ``after=3`` fires on the third occurrence that
    matches ``site``/``match``.  ``times`` is how many consecutive
    matching occurrences fire (``0`` = every occurrence from ``after``
    on — a permanent fault).  ``seconds`` scales delay-like kinds;
    ``jitter`` widens it by a seeded, per-occurrence fraction.
    """

    site: str
    kind: str
    after: int = 1
    times: int = 1
    seconds: float = 0.0
    jitter: float = 0.0
    match: str = ""

    def __post_init__(self) -> None:
        if not self.site or not self.kind:
            raise ValueError("a fault spec needs a site and a kind")
        if self.after < 1:
            raise ValueError("after is 1-based and must be >= 1")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = forever)")
        if self.seconds < 0 or self.jitter < 0:
            raise ValueError("seconds and jitter must be non-negative")

    def covers(self, occurrence: int) -> bool:
        """Whether this spec fires on its ``occurrence``-th match (1-based)."""

        if occurrence < self.after:
            return False
        return self.times == 0 or occurrence < self.after + self.times


class FaultPlan:
    """An immutable, seeded script of :class:`FaultSpec`\\ s.

    The plan is pure data — deciding and acting happen in the
    :class:`FaultInjector` and its call sites.  ``seed`` feeds the
    deterministic jitter stream of delay faults; two injectors built from
    equal plans behave identically.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.specs == other.specs and self.seed == other.seed

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FaultPlan(specs={list(self.specs)!r}, seed={self.seed})"

    # -- serialisation (plans ride worker command lines as JSON) ------------
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(spec) for spec in self.specs]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            specs=[FaultSpec(**spec) for spec in data.get("specs", ())],
            seed=int(data.get("seed", 0)),
        )


class FaultInjector:
    """Counts occurrences per spec and fires the scripted faults.

    Thread-safe: fleet components report occurrences from handler,
    heartbeat and watchdog threads concurrently.  ``log`` (if given)
    receives one dict per fired fault — wire it to the fleet's JSONL
    event stream so chaos is auditable next to its consequences.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        log: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.log = log
        self._lock = threading.Lock()
        self._counts: list[int] = [0] * len(self.plan.specs)
        #: Every fault fired so far (also sent to ``log``), for assertions.
        self.fired: list[dict[str, Any]] = []

    def __bool__(self) -> bool:
        return bool(self.plan)

    def fire(self, site: str, detail: str = "") -> FaultSpec | None:
        """Report one occurrence; the spec to act on, or None.

        Each spec counts only the occurrences that match its own
        ``site``/``match`` filter, so two specs at one site with
        different filters keep independent schedules.  When several
        specs cover the same occurrence, the first in plan order wins.
        """

        if not self.plan.specs:
            return None
        chosen: FaultSpec | None = None
        occurrence = 0
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site or spec.match not in detail:
                    continue
                self._counts[index] += 1
                if chosen is None and spec.covers(self._counts[index]):
                    chosen = spec
                    occurrence = self._counts[index]
        if chosen is not None:
            event = {
                "event": "fault",
                "site": site,
                "kind": chosen.kind,
                "detail": detail,
                "occurrence": occurrence,
            }
            self.fired.append(event)
            if self.log is not None:
                try:
                    self.log(event)
                except Exception:  # noqa: BLE001 - logging must never mask the fault
                    pass
        return chosen

    def delay_seconds(self, spec: FaultSpec, *context: object) -> float:
        """The (seeded) delay a delay-like spec charges this occurrence."""

        if spec.seconds <= 0:
            return 0.0
        if spec.jitter <= 0:
            return spec.seconds
        rng = DeterministicRNG(self.plan.seed).child("fault-jitter", spec.site, *context)
        return max(0.0, spec.seconds * (1.0 + rng.uniform(-spec.jitter, spec.jitter)))

    def sleep_if_delay(self, spec: FaultSpec | None, *context: object) -> None:
        """Sleep a ``delay`` spec's seconds (no-op for anything else).

        The *decision* to delay is deterministic (plan + occurrence
        counts); the sleep itself is real wall-clock, which is the point
        — a slow worker is slow in real time.
        """

        if spec is not None and spec.kind == "delay":
            seconds = self.delay_seconds(spec, *context)
            if seconds > 0:
                time.sleep(seconds)


def null_injector() -> FaultInjector:
    """An injector that never fires — the default at every call site."""

    return FaultInjector(FaultPlan())


def _specs_summary(specs: Sequence[FaultSpec]) -> str:  # pragma: no cover - repr aid
    return ", ".join(f"{spec.site}:{spec.kind}@{spec.after}" for spec in specs)
