"""Property-style equivalence: compiled-reference scoring == legacy string scoring.

The compiled engine must be a pure optimisation — for every problem and
every answer, the ScoreCard coming out of the compiled path (per-call,
batch, and pooled batch) must be bit-identical to the legacy string path
that re-derives all reference artifacts on each call.
"""

from __future__ import annotations

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.dataset.schema import Variant
from repro.llm.interface import GenerationRequest, QueryModule
from repro.scoring.aggregate import score_answer, score_answer_legacy
from repro.scoring.compiled import (
    ReferenceStore,
    compile_reference,
    get_compiled_reference,
    score_answer_compiled,
    score_batch,
)


@pytest.fixture(scope="module")
def response_pairs(small_dataset):
    """(problem, raw_response) pairs from models across the quality range."""

    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig())
    pairs = []
    for model_name in ("gpt-4", "llama-2-70b-chat", "llama-7b"):
        model = benchmark._resolve_model(model_name)
        query = QueryModule(model, max_workers=1)
        requests = [GenerationRequest(problem=p, shots=0, sample_index=0) for p in small_dataset]
        for result in query.query_batch(requests):
            pairs.append((result.request.problem, result.response))
    return pairs


def test_compiled_path_matches_legacy_on_real_responses(response_pairs):
    """Every variant, every model tier: compiled ScoreCards are bit-identical."""

    for problem, response in response_pairs:
        legacy = score_answer_legacy(problem, response)
        compiled = score_answer_compiled(get_compiled_reference(problem), response)
        assert compiled == legacy, problem.problem_id


def test_score_answer_routes_through_compiled_path(response_pairs):
    problem, response = response_pairs[0]
    assert score_answer(problem, response) == score_answer_legacy(problem, response)


def test_batch_matches_legacy_and_preserves_order(response_pairs):
    legacy = [score_answer_legacy(p, r) for p, r in response_pairs]
    assert score_batch(response_pairs, store=ReferenceStore()) == legacy
    # Pool fan-out returns the same cards in the same order.
    assert score_batch(response_pairs, max_workers=2, executor="thread") == legacy


def test_batch_dedupes_repeated_responses(small_dataset):
    problem = next(iter(small_dataset))
    response = problem.reference_plain()
    pairs = [(problem, response)] * 5 + [(problem, "kind: Wrong\n")]
    cards = score_batch(pairs)
    assert len(cards) == 6
    assert len({id(c) for c in cards[:5]}) == 1  # one shared ScoreCard object
    assert cards[5] != cards[0]


def test_batch_dedupes_modulo_prose_wrapping(small_dataset):
    """Dedup keys on the extracted YAML, not the raw response text."""

    problem = next(iter(small_dataset))
    plain = problem.reference_plain()
    wrapped = f"Here is the YAML you asked for:\n```yaml\n{plain}```\nHope this helps!"
    cards = score_batch([(problem, plain), (problem, wrapped)])
    assert cards[0] is cards[1]


def test_skip_unit_tests_matches_legacy(response_pairs):
    subset = response_pairs[:40]
    legacy = [score_answer_legacy(p, r, run_unit_tests=False) for p, r in subset]
    assert score_batch(subset, run_unit_tests=False) == legacy


# ---------------------------------------------------------------------------
# yaml_aware edge cases (multi-document answers, null leaves, empty candidate)
# ---------------------------------------------------------------------------

_EDGE_REFERENCES = {
    "multi-doc": (
        "apiVersion: v1\n"
        "kind: Service\n"
        "metadata:\n"
        "  name: web  # *\n"
        "---\n"
        "apiVersion: apps/v1\n"
        "kind: Deployment\n"
        "metadata:\n"
        "  name: web\n"
    ),
    "null-leaves": (
        "apiVersion: v1\n"
        "kind: ConfigMap\n"
        "metadata:\n"
        "  name: conf\n"
        "  annotations: null\n"
        "data:\n"
        "  empty:\n"
        "  image: ubuntu:22.04  # v in ['20.04', '22.04']\n"
    ),
    "wildcard-heavy": (
        "apiVersion: v1\n"
        "kind: Pod\n"
        "metadata:\n"
        "  name: pod-a  # *\n"
        "spec:\n"
        "  containers:\n"
        "  - name: main  # *\n"
        "    image: nginx\n"
    ),
}

_EDGE_CANDIDATES = [
    "",
    "   \n",
    "not yaml: [unclosed\n",
    "just a prose sentence about kubernetes",
    "null",
    "apiVersion: v1\nkind: Service\nmetadata:\n  name: anything\n",
    # multi-document answer
    "apiVersion: v1\nkind: Service\nmetadata:\n  name: x\n---\napiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\n",
    # trailing empty document
    "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: conf\n  annotations: null\ndata:\n  empty:\n  image: ubuntu:22.04\n---\n",
    # list-valued document
    "- a\n- b\n",
]


@pytest.mark.parametrize("ref_name", sorted(_EDGE_REFERENCES))
@pytest.mark.parametrize("candidate_index", range(len(_EDGE_CANDIDATES)))
def test_edge_case_equivalence(small_dataset, ref_name, candidate_index):
    """Synthetic references x degenerate candidates score identically."""

    from dataclasses import replace

    base = next(iter(small_dataset))
    problem = replace(base, reference_yaml=_EDGE_REFERENCES[ref_name])
    candidate = _EDGE_CANDIDATES[candidate_index]
    legacy = score_answer_legacy(problem, candidate)
    compiled = score_answer_compiled(compile_reference(problem), candidate)
    assert compiled == legacy


def test_compiled_reference_artifacts(small_dataset):
    """The compiled artifact mirrors the problem's derived views."""

    problem = next(iter(small_dataset))
    compiled = compile_reference(problem)
    assert compiled.problem_id == problem.problem_id
    assert compiled.reference_plain == problem.reference_plain()
    assert compiled.reference_ngrams.length == len(compiled.reference_tokens)
    assert compiled.labeled_tree is not None
    assert compiled.reference_documents  # dataset references always parse


def test_instance_cache_compiles_once(small_dataset):
    problem = list(small_dataset)[1]
    first = get_compiled_reference(problem)
    assert get_compiled_reference(problem) is first
    store = ReferenceStore()
    assert store.get(problem) is first
    assert len(store) == 1
