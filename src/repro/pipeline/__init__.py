"""Staged evaluation pipeline (query → post-process → score → aggregate).

The paper's system is a pipeline of explicit components; this package
makes each one a typed, pluggable stage connected by an
:class:`EvaluationPipeline` that streams per-record results, checkpoints
partial runs and fans parallelisable work out over an executor — serial,
thread-pool, the in-process evaluation-cluster runtime that shares its
job/claim/report protocol with the Figure 5 simulation, an asyncio
backend with token-bucket rate limiting for remote endpoints, or a
process pool for CPU-bound scoring.

For wall-clock-bound runs, :class:`ShardedEvaluationPipeline` splits the
requests across ``N`` sub-pipelines (one checkpoint file each) and
streams them: generation of shard *k+1* overlaps scoring of shard *k*,
and the merged result is bit-identical to an unsharded run.  Where the
cuts land is a pluggable :class:`ShardPlanner` policy — by request count
(:class:`CountPlanner`) or by Figure 5-predicted seconds so heterogeneous
shards finish together (:class:`CostPlanner`).  A leaderboard run hands
several models to the :class:`MultiModelScheduler`, which interleaves
their shards over one shared generation executor and one shared scoring
pool with per-``(model, shard)`` checkpoints — dynamically by default:
idle workers steal the next batch from the job with the longest
predicted remaining seconds (:class:`StealPolicy`), re-predicted from
measured durations when a calibration store is wired in
(:mod:`repro.evalcluster.calibration`).

Typical use::

    from repro.pipeline import EvaluationPipeline, PipelineCheckpoint
    from repro.llm.interface import GenerationRequest
    from repro.llm.registry import get_model

    pipeline = EvaluationPipeline(
        get_model("gpt-4"),
        executor="cluster",
        max_workers=8,
        checkpoint=PipelineCheckpoint("run.ckpt.jsonl"),
    )
    for record in pipeline.run_iter(
        GenerationRequest(problem=p) for p in dataset
    ):
        print(record.problem_id, record.scores.unit_test)
"""

from repro.pipeline.checkpoint import (
    PipelineCheckpoint,
    model_checkpoint_base,
    shard_checkpoint_path,
)
from repro.pipeline.executors import (
    AsyncExecutor,
    ClusterExecutor,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    close_executor,
    resolve_executor,
)
from repro.pipeline.pipeline import EvaluationPipeline, PreparedBatch
from repro.pipeline.planner import (
    BATCH_BY_NAMES,
    PLANNER_NAMES,
    BatchSizer,
    CostPlanner,
    CountPlanner,
    ShardPlan,
    ShardPlanner,
    resolve_planner,
)
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.pipeline.scheduler import ModelJob, MultiModelScheduler, StealPolicy
from repro.pipeline.sharding import ShardedEvaluationPipeline, merge_evaluations
from repro.pipeline.stages import (
    AggregateStage,
    ExtractStage,
    GenerateStage,
    PromptStage,
    ScoreStage,
    Stage,
    StageContext,
    WorkItem,
    default_stages,
)

__all__ = [
    "AggregateStage",
    "AsyncExecutor",
    "BATCH_BY_NAMES",
    "BatchSizer",
    "ClusterExecutor",
    "CostPlanner",
    "CountPlanner",
    "EvaluationPipeline",
    "EvaluationRecord",
    "Executor",
    "ExtractStage",
    "GenerateStage",
    "ModelEvaluation",
    "ModelJob",
    "MultiModelScheduler",
    "PLANNER_NAMES",
    "PipelineCheckpoint",
    "PreparedBatch",
    "ProcessExecutor",
    "PromptStage",
    "ScoreStage",
    "SerialExecutor",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEvaluationPipeline",
    "Stage",
    "StageContext",
    "StealPolicy",
    "ThreadedExecutor",
    "WorkItem",
    "close_executor",
    "default_stages",
    "merge_evaluations",
    "model_checkpoint_base",
    "resolve_executor",
    "resolve_planner",
    "shard_checkpoint_path",
]
