"""Typed, pluggable stages of the evaluation pipeline.

The paper's system is a pipeline — query module, post-processing,
multi-perspective scoring, evaluation cluster — and each of those steps is
one explicit stage here:

``PromptStage`` → ``GenerateStage`` → ``ExtractStage`` → ``ScoreStage``
→ ``AggregateStage``

A stage transforms a batch of :class:`WorkItem` records and returns the
(usually same) batch; the :class:`~repro.pipeline.pipeline.EvaluationPipeline`
threads batches through the chain and hands parallelisable work to the
configured :class:`~repro.pipeline.executors.Executor`.  Custom stages —
response caching, answer repair, safety filters — implement the same
two-method interface and slot anywhere into the chain.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.dataset.problem import Problem
from repro.llm.interface import GenerationRequest, QueryModule
from repro.pipeline.executors import AsyncExecutor, DegradedResult, Executor, SerialExecutor
from repro.pipeline.records import EvaluationRecord, ModelEvaluation
from repro.postprocess import extract_yaml
from repro.scoring.aggregate import ScoreCard
from repro.scoring.cache import ScoreCache
from repro.scoring.compiled import (
    CompiledReference,
    ReferenceStore,
    ScoreTask,
    answer_digest,
    run_score_task,
    score_extracted,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports us)
    from repro.llm.interface import Model
    from repro.llm.remote import ModelSpec

__all__ = [
    "WorkItem",
    "StageContext",
    "Stage",
    "PromptStage",
    "GenerateStage",
    "ExtractStage",
    "ScoreStage",
    "AggregateStage",
    "FleetGenerationStage",
    "GenerationOutcome",
    "GenerationTask",
    "default_stages",
    "offload_stages",
    "run_generation_task",
    "run_timed_score_task",
]


@dataclass
class WorkItem:
    """One unit of evaluation work flowing through the stage chain.

    Stages fill the fields left to right; a fully processed item carries
    everything needed to emit an :class:`EvaluationRecord`.
    """

    request: GenerationRequest
    model_name: str = ""
    prompt: str = ""
    response: str = ""
    error: str = ""
    extracted: str | None = None
    scores: ScoreCard | None = None
    generate_seconds: float = 0.0
    score_seconds: float = 0.0

    def to_record(self) -> EvaluationRecord:
        """Materialise the finished item as an evaluation record."""

        if self.scores is None:
            raise ValueError(f"item for {self.request.problem.problem_id!r} has not been scored")
        problem = self.request.problem
        return EvaluationRecord(
            model_name=self.model_name,
            problem_id=problem.problem_id,
            base_id=problem.base_id,
            category=problem.category.value,
            application=problem.application,
            variant=problem.variant.value,
            has_code_context=problem.has_code_context,
            solution_lines=problem.solution_lines(),
            question_tokens=problem.question_tokens(),
            shots=self.request.shots,
            sample_index=self.request.sample_index,
            scores=self.scores,
            raw_response=self.response,
            error=self.error,
            generate_seconds=self.generate_seconds,
            score_seconds=self.score_seconds,
        )


@dataclass(frozen=True)
class StageContext:
    """Run-scoped services a stage may use.

    ``executor`` backs parallelisable stage work generally (in practice:
    scoring).  ``generate_executor``, when set, overrides it for the
    generate stage only — the two wall-clock sinks are different resources
    (model querying waits on I/O, scoring burns CPU), so a run may pair an
    async generation backend with a process-pool scoring backend.
    """

    executor: Executor = field(default_factory=SerialExecutor)
    generate_executor: Executor | None = None


@runtime_checkable
class Stage(Protocol):
    """A typed pipeline stage: a name plus a batch transformation."""

    name: str

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:  # pragma: no cover
        ...


class PromptStage:
    """Build the full prompt text for every request (§3.1 / Appendix B).

    The simulated models consume the problem directly, but the prompt is
    what a real endpoint would receive — materialising it per item keeps
    the pipeline inspectable (and checkpointable) at the exact boundary
    where a remote API call would happen.
    """

    name = "prompt"

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:
        for item in items:
            item.prompt = item.request.prompt()
        return items


class GenerateStage:
    """Query the model for every item through the universal query module.

    Per-request failures are captured into the item's ``error`` field (the
    response stays empty and scores zero) instead of aborting the batch.
    With an :class:`~repro.pipeline.executors.AsyncExecutor` configured,
    the whole batch goes through ``query_batch_async`` — bounded
    concurrency plus the executor's token bucket — so an
    :class:`~repro.llm.interface.AsyncModel`'s request latencies overlap;
    results are order-identical to the synchronous path either way.
    """

    name = "generate"

    def __init__(self, query: QueryModule) -> None:
        self.query = query

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:
        requests = [item.request for item in items]
        executor = context.generate_executor or context.executor
        if isinstance(executor, AsyncExecutor):
            results = executor.run(
                self.query.query_batch_async(
                    requests,
                    max_concurrency=executor.max_concurrency,
                    limiter=executor.limiter,
                )
            )
        elif context.generate_executor is not None:
            # An explicitly chosen generation backend is honored: requests
            # fan out over it with per-request error capture, results in
            # order.  (Process pools are rejected at config time — models
            # are not picklable contracts.)
            results = executor.map(self.query._query_captured, requests)
        else:
            results = self.query.query_batch(requests)
        for item, result in zip(items, results):
            item.model_name = result.model_name
            item.response = result.response
            item.error = result.error
        return items


class ExtractStage:
    """Post-process each raw response into its clean YAML payload (§3.2)."""

    name = "extract"

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:
        for item in items:
            item.extracted = extract_yaml(item.response)
        return items


def run_timed_score_task(task: ScoreTask) -> tuple[ScoreCard, float]:
    """Run a picklable score envelope and measure its wall-clock seconds.

    Module-level so process-pool executors can pickle it; the measurement
    happens inside the worker, so it captures the true scoring cost (not
    queueing or IPC time).
    """

    start = time.perf_counter()
    card = run_score_task(task)
    return card, time.perf_counter() - start


class ScoreStage:
    """Score each extracted answer with all six metrics (§3.2, §3.3).

    Identical ``(problem_id, extracted)`` pairs are scored once per run —
    multi-sample sweeps and different models frequently repeat answers —
    and the memo persists across batches, so incremental streaming pays
    the same total cost as one big :func:`~repro.scoring.compiled.score_batch`
    call.  Unique pairs are fanned out over the run's executor; every
    metric is a pure function, so the executor cannot change a score.

    Every freshly scored pair is timed where it runs (in-process or inside
    a pool worker) and the measured seconds are memoised next to the card:
    a record whose answer deduplicated onto an earlier identical one
    carries the seconds the actual scoring took, which is the ground truth
    the calibration loop wants (what scoring this answer *costs*, not the
    near-zero memo lookup).

    With a :class:`~repro.scoring.cache.ScoreCache` wired in, a second,
    *persistent* layer sits above the in-run memo: a unique pair whose
    content-addressed key — (compiled-reference digest, extracted-answer
    digest, scorer version) — is already in the cache skips scoring
    entirely, and every freshly scored pair is written back once per
    batch.  Hits are resolved here in the parent process, so a
    process-pool executor only ever ships miss envelopes; a cache-served
    pair reports zero scoring seconds (the truth of this run — the cost
    was paid by whichever run populated the cache).
    """

    name = "score"

    def __init__(
        self,
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
        cache: ScoreCache | None = None,
    ) -> None:
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests
        self.cache = cache
        self._memo: dict[tuple[str, str], tuple[ScoreCard, float]] = {}

    def _score_one(self, task: tuple[CompiledReference, str]) -> tuple[ScoreCard, float]:
        compiled, extracted = task
        start = time.perf_counter()
        card = score_extracted(compiled, extracted, self.run_unit_tests)
        return card, time.perf_counter() - start

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:
        pending: dict[tuple[str, str], tuple[Problem, str]] = {}
        degraded: dict[tuple[str, str], str] = {}
        for item in items:
            extracted = item.extracted if item.extracted is not None else extract_yaml(item.response)
            item.extracted = extracted
            key = (item.request.problem.problem_id, extracted)
            if key not in self._memo and key not in pending:
                if self.cache is not None:
                    compiled = self.store.get(item.request.problem)
                    card = self.cache.get(
                        compiled.digest,
                        answer_digest(extracted),
                        self.run_unit_tests,
                        scope=item.model_name,
                    )
                    if card is not None:
                        # Cache-served: this run did no scoring work for the
                        # pair, so it reports zero seconds.
                        self._memo[key] = (card, 0.0)
                        continue
                pending[key] = (item.request.problem, extracted)
        if pending:
            keys = list(pending)
            if getattr(context.executor, "requires_picklable_tasks", False):
                # Process-backed executors get self-contained envelopes: the
                # raw problem pickles small, an already-compiled reference
                # is shipped for free, and a cold one is compiled at most
                # once per worker process.
                envelopes = [
                    ScoreTask(
                        problem=problem,
                        extracted=extracted,
                        run_unit_tests=self.run_unit_tests,
                        compiled=self.store.peek(problem),
                    )
                    for problem, extracted in (pending[key] for key in keys)
                ]
                timed = context.executor.map(run_timed_score_task, envelopes)
            else:
                tasks = [
                    (self.store.get(problem), extracted)
                    for problem, extracted in (pending[key] for key in keys)
                ]
                timed = context.executor.map(self._score_one, tasks)
            for key, result in zip(keys, timed):
                if isinstance(result, DegradedResult):
                    # The infrastructure lost this slot (an abandoned or
                    # quarantined fleet job).  Batch-local only: no memo
                    # entry and no cache write, so a later batch — or a
                    # healthy rerun — scores the pair for real.
                    degraded[key] = result.reason
                else:
                    self._memo[key] = result
            if self.cache is not None:
                self.cache.put_batch(
                    (
                        self.store.get(problem).digest,
                        answer_digest(extracted),
                        self._memo[key][0],
                        self.run_unit_tests,
                    )
                    for key, (problem, extracted) in pending.items()
                    if key in self._memo
                )
        for item in items:
            key = (item.request.problem.problem_id, item.extracted)
            if key not in self._memo and key in degraded:
                reason = degraded[key]
                item.scores = ScoreCard(
                    problem_id=item.request.problem.problem_id,
                    bleu=0.0,
                    edit_distance=0.0,
                    exact_match=0.0,
                    kv_exact=0.0,
                    kv_wildcard=0.0,
                    unit_test=0.0,
                    extracted_yaml=item.extracted,
                    failure_message=reason,
                )
                item.score_seconds = 0.0
                if not item.error:
                    item.error = f"degraded: {reason}"
                continue
            card, seconds = self._memo[key]
            item.scores = card
            item.score_seconds = seconds
        return items


class AggregateStage:
    """Fold finished records into a :class:`ModelEvaluation` (§3.4 reporting)."""

    name = "aggregate"

    def finalize(self, model_name: str, records: Sequence[EvaluationRecord]) -> ModelEvaluation:
        return ModelEvaluation(model_name=model_name, records=list(records))


def default_stages(
    query: QueryModule,
    *,
    store: ReferenceStore | None = None,
    run_unit_tests: bool = True,
    score_cache: ScoreCache | None = None,
) -> list[Stage]:
    """The paper's stage chain for one model (everything before aggregation)."""

    return [
        PromptStage(),
        GenerateStage(query),
        ExtractStage(),
        ScoreStage(store=store, run_unit_tests=run_unit_tests, cache=score_cache),
    ]


# ---------------------------------------------------------------------------
# Fleet generation offload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenerationTask:
    """A picklable unit of *end-to-end* evaluation work for fleet workers.

    The whole generate→extract→score chain for one request, shippable
    over the wire: the request and a :class:`~repro.llm.remote.ModelSpec`
    (transport configuration, never a live model object) plus the same
    compiled-reference piggyback :class:`~repro.scoring.compiled.ScoreTask`
    uses.  The worker rebuilds the model once per process from the spec.
    """

    request: GenerationRequest
    spec: "ModelSpec"
    run_unit_tests: bool = True
    compiled: CompiledReference | None = None


@dataclass
class GenerationOutcome:
    """What one :class:`GenerationTask` produced, measured where it ran.

    ``generate_seconds``/``score_seconds`` are worker-measured wall
    seconds — the true remote cost, which both the pipeline's timing
    fields and the fleet's throughput EWMAs want.  Mirrors
    :meth:`QueryModule._query_captured` semantics: a model exception
    becomes ``error`` with an empty response, and the (empty) extraction
    is still scored, exactly as the parent-process path would.
    """

    model_name: str
    response: str
    error: str
    extracted: str
    card: ScoreCard
    generate_seconds: float
    score_seconds: float


#: Per-process model memo for :func:`run_generation_task`, keyed by spec
#: name: pickled spec copies are distinct objects, so the *name* is the
#: one-model-per-process contract — the same role ``_PROCESS_STORE`` plays
#: for compiled references.
_SPEC_MODELS: dict[str, "Model"] = {}


def _generation_model(spec: "ModelSpec") -> "Model":
    """This process's model for ``spec``, built once and reused.

    Inside a fleet worker the model's rate limiter is the *distributed*
    token bucket for the spec's ``limiter_key`` — every worker hitting
    the endpoint debits one server-side balance, so the global limit
    holds across the fleet.  Outside a worker (a process pool, or the
    parent process itself) the spec falls back to a local wall-clock
    bucket.
    """

    model = _SPEC_MODELS.get(spec.name)
    if model is None:
        from repro.evalcluster.fleet import fleet_pacer

        limiter = None
        if spec.rate_limit is not None:
            limiter = fleet_pacer(spec.limiter_key, spec.rate_limit, spec.burst)
        model = spec.build(limiter=limiter)
        _SPEC_MODELS[spec.name] = model
    return model


def run_generation_task(task: GenerationTask) -> GenerationOutcome:
    """Run one request's full generate→extract→score chain where it lands.

    Module-level and self-contained so fleet workers (and process pools)
    can pickle it by reference.  Error capture matches
    :meth:`QueryModule._query_captured` exactly — ``{type}: {message}``,
    empty response — and the empty extraction is scored like any other,
    so offloaded records are bit-identical to parent-generated ones.

    Fires the ``worker.generate`` fault site (detail = problem id) before
    querying the model: ``kill`` takes the whole worker down mid-batch —
    the lease/strike/degradation machinery's hardest case — and ``delay``
    stretches the request.
    """

    from repro.evalcluster.fleet import worker_injector

    request = task.request
    problem = request.problem
    spec = worker_injector().fire("worker.generate", problem.problem_id)
    if spec is not None and spec.kind == "kill":
        # Die as a crashed generation process would: mid-batch, claim
        # registered, strike counted, nothing reported.
        os.kill(os.getpid(), signal.SIGKILL)
    worker_injector().sleep_if_delay(spec, problem.problem_id)

    model = _generation_model(task.spec)
    error = ""
    started = time.perf_counter()
    try:
        response = model.generate(
            problem, shots=request.shots, sample_index=request.sample_index
        )
    except Exception as exc:  # noqa: BLE001 - mirror _query_captured
        response = ""
        error = f"{type(exc).__name__}: {exc}"
    generate_seconds = time.perf_counter() - started

    extracted = extract_yaml(response)
    compiled = task.compiled
    if compiled is None:
        from repro.scoring.compiled import warm_reference_store

        compiled = warm_reference_store().get(problem)
    started = time.perf_counter()
    card = score_extracted(compiled, extracted, task.run_unit_tests)
    score_seconds = time.perf_counter() - started
    return GenerationOutcome(
        model_name=task.spec.name,
        response=response,
        error=error,
        extracted=extracted,
        card=card,
        generate_seconds=generate_seconds,
        score_seconds=score_seconds,
    )


class FleetGenerationStage:
    """Offload the whole generate→extract→score chain to the executor.

    One stage replaces ``GenerateStage + ExtractStage + ScoreStage`` when
    generation itself should leave the parent process: each item becomes
    a :class:`GenerationTask` and the executor — in practice a
    :class:`~repro.evalcluster.fleet.FleetExecutor` — maps
    :func:`run_generation_task` over the batch.  The coordinator then
    only moves envelopes; N workers generate *and* score concurrently
    while the distributed token bucket keeps the endpoint's global rate
    limit intact.

    A :class:`~repro.pipeline.executors.DegradedResult` slot (the fleet
    lost that job beyond recovery) degrades exactly like the score
    stage's contract: a zero :class:`ScoreCard` whose ``failure_message``
    is the infrastructure reason, an ``error``-marked record, nothing
    memoised.

    Trade-offs vs the parent path (same records either way): no
    :class:`~repro.scoring.cache.ScoreCache` layer — workers always score
    — and no cross-item answer dedup; offload pays off when generation
    latency dominates, not when scoring does.
    """

    name = "fleet-generate"

    def __init__(
        self,
        spec: "ModelSpec",
        store: ReferenceStore | None = None,
        run_unit_tests: bool = True,
    ) -> None:
        self.spec = spec
        self.store = store or ReferenceStore()
        self.run_unit_tests = run_unit_tests

    def process(self, items: list[WorkItem], context: StageContext) -> list[WorkItem]:
        tasks = [
            GenerationTask(
                request=item.request,
                spec=self.spec,
                run_unit_tests=self.run_unit_tests,
                compiled=self.store.peek(item.request.problem),
            )
            for item in items
        ]
        executor = context.generate_executor or context.executor
        outcomes = executor.map(run_generation_task, tasks)
        for item, outcome in zip(items, outcomes):
            if isinstance(outcome, DegradedResult):
                reason = outcome.reason
                item.model_name = self.spec.name
                item.extracted = extract_yaml(item.response)
                item.scores = ScoreCard(
                    problem_id=item.request.problem.problem_id,
                    bleu=0.0,
                    edit_distance=0.0,
                    exact_match=0.0,
                    kv_exact=0.0,
                    kv_wildcard=0.0,
                    unit_test=0.0,
                    extracted_yaml=item.extracted,
                    failure_message=reason,
                )
                item.generate_seconds = 0.0
                item.score_seconds = 0.0
                if not item.error:
                    item.error = f"degraded: {reason}"
                continue
            item.model_name = outcome.model_name
            item.response = outcome.response
            item.error = outcome.error
            item.extracted = outcome.extracted
            item.scores = outcome.card
            item.generate_seconds = outcome.generate_seconds
            item.score_seconds = outcome.score_seconds
        return items


def offload_stages(
    spec: "ModelSpec",
    *,
    store: ReferenceStore | None = None,
    run_unit_tests: bool = True,
) -> list[Stage]:
    """The stage chain with generation offloaded to the run's executor."""

    return [
        PromptStage(),
        FleetGenerationStage(spec, store=store, run_unit_tests=run_unit_tests),
    ]
