"""The executable cluster runtime and the unified job/claim/report protocol."""

from __future__ import annotations

import pytest

from repro.evalcluster import (
    ClusterSimulationConfig,
    EvaluationJob,
    Master,
    PullThroughCache,
    SimulatedClock,
    WorkerImageCache,
    run_jobs,
    run_payloads,
    simulate_evaluation,
    sweep_workers,
)

# sweep_workers on the conftest SMALL_COUNTS corpus, captured before the
# Master/Worker unification: the refactor must not move a single float.
SMALL_SWEEP_BEFORE_UNIFICATION = {
    False: {1: 2.1083671541505287, 4: 0.6171023100896204, 16: 0.2694829207951326},
    True: {1: 2.110598709706084, 4: 0.6014746060771419, 16: 0.22650687855578072},
}


def test_sweep_unchanged_by_runtime_unification(small_dataset):
    sweep = sweep_workers(small_dataset, worker_counts=(1, 4, 16))
    for caching, expected in SMALL_SWEEP_BEFORE_UNIFICATION.items():
        for workers, hours in expected.items():
            assert sweep[caching][workers] == pytest.approx(hours, rel=1e-12)


def test_run_payloads_executes_in_submission_order():
    results = run_payloads([lambda i=i: i * 10 for i in range(25)], num_workers=4)
    assert results == [i * 10 for i in range(25)]


def test_run_jobs_reports_through_master_protocol():
    jobs = [
        EvaluationJob(job_id=f"job-{i}", problem_id=f"p-{i}", payload=lambda i=i: {"value": i})
        for i in range(6)
    ]
    reports = run_jobs(jobs, num_workers=3)
    assert set(reports) == {job.job_id for job in jobs}
    assert all(report.passed for report in reports.values())
    assert [reports[f"job-{i}"].result for i in range(6)] == [{"value": i} for i in range(6)]
    # Every job was claimed by a real worker.
    assert all(report.worker_id.startswith("worker-") for report in reports.values())


def test_failing_payload_reports_failure_not_crash():
    def bad():
        raise KeyError("missing manifest")

    reports = run_jobs(
        [
            EvaluationJob(job_id="ok", problem_id="p1", payload=lambda: "fine"),
            EvaluationJob(job_id="bad", problem_id="p2", payload=bad),
            EvaluationJob(job_id="after", problem_id="p3", payload=lambda: "still fine"),
        ],
        num_workers=1,
    )
    assert reports["ok"].passed and reports["ok"].result == "fine"
    assert not reports["bad"].passed
    assert "KeyError" in reports["bad"].result
    # The worker survived the failure and completed the next job.
    assert reports["after"].passed


def test_runtime_deterministic_across_worker_counts():
    payloads = [lambda i=i: i ** 2 for i in range(40)]
    assert run_payloads(payloads, num_workers=1) == run_payloads(payloads, num_workers=16)


def test_payloadless_job_rejected_in_real_mode():
    # A job without a payload is a programming error, not a job failure:
    # it raises out of the runtime instead of producing a failed report.
    with pytest.raises(ValueError, match="no payload"):
        run_jobs([EvaluationJob(job_id="j", problem_id="p")], num_workers=1)


def test_master_result_accessors():
    master = Master()
    master.submit([EvaluationJob(job_id="j1", problem_id="p1")])
    job = master.claim()
    master.report(job.job_id, "w1", finished_at=1.0, passed=True, result=42)
    assert master.result_of("j1") == 42
    assert master.reports()["j1"].result == 42
    assert master.all_done()


def test_preload_is_public_and_free():
    shared = PullThroughCache(enabled=True)
    cache = WorkerImageCache("w", shared)
    cache.preload(["nginx:latest", "redis:7"])
    for image in ("nginx:latest", "redis:7"):
        plan = cache.pull(image)
        assert plan.cached_locally
        assert plan.internet_mb == 0.0 and plan.lan_mb == 0.0
    # Nothing was accounted against the shared cache.
    assert shared.internet_mb_total == 0.0 and shared.lan_mb_total == 0.0


def test_simulated_clock_is_default_worker_mode(small_dataset):
    """simulate_evaluation still runs the SimulatedClock mode end to end."""

    config = ClusterSimulationConfig(num_workers=4, worker_boot_seconds=5.0)
    result = simulate_evaluation(small_dataset, config)
    assert result.jobs == len(small_dataset)

    from repro.evalcluster.events import EventQueue, SharedLink
    from repro.evalcluster.worker import Worker

    worker = Worker("w", Master(), EventQueue(), SharedLink(100.0), PullThroughCache())
    assert isinstance(worker.runner, SimulatedClock)
