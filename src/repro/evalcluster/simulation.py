"""The Figure 5 micro-benchmark: evaluation time vs number of workers.

The simulation reproduces the setting of §3.3: 1011 unit-test jobs, worker
VMs with 4 cores / 8 GB, a 100 Mbps shared internet uplink, and an optional
shared Docker registry pull-through cache on the master.  The per-problem
base times are derived from the paper's single-machine measurement (about
10 hours for 1011 problems, i.e. ~35 s per problem once images are cached)
and the image needs are taken from each problem's unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.problem import Problem, ProblemSet
from repro.evalcluster.events import EventQueue, SharedLink
from repro.evalcluster.master import EvaluationJob, Master
from repro.evalcluster.registry_cache import PullThroughCache
from repro.evalcluster.worker import Worker
from repro.testexec import steps as S
from repro.utils.rng import DeterministicRNG
from repro.yamlkit.parsing import YamlParseError, load_all_documents

__all__ = [
    "ClusterSimulationConfig",
    "SimulationResult",
    "job_base_seconds",
    "job_images",
    "problem_images",
    "simulate_evaluation",
    "sweep_workers",
]

# Images every Kubernetes job touches regardless of the manifest (pause
# containers, kubectl wait polling, metrics images of the Minikube addons).
_BASE_IMAGES = ("registry",)

#: Attribute caching a problem's image tuple on the Problem instance (same
#: pattern as the compiled-reference cache: derived purely from immutable
#: fields, so attaching it does not break value semantics).
_IMAGES_CACHE_ATTR = "_problem_images"


def _walk_images(node: object, out: list[str]) -> None:
    """Collect every ``image:`` value in a parsed document, in document order."""

    if isinstance(node, dict):
        for key, value in node.items():
            if key == "image" and isinstance(value, str):
                out.append(value.strip())
            else:
                _walk_images(value, out)
    elif isinstance(node, list):
        for item in node:
            _walk_images(item, out)


def _images_in_yaml(text: str) -> list[str]:
    """``image:`` values of a YAML text, via real parsing when possible.

    Falls back to line scanning only when the text does not parse (a
    malformed manifest still pulls whatever images its apply would have
    touched before failing).  The scan accepts both mapping lines
    (``image: nginx``) and list items (``- image: nginx``) — containers
    are almost always list entries, so a list-blind scan undercounted a
    malformed manifest's pulls.
    """

    try:
        documents = load_all_documents(text)
    except YamlParseError:
        documents = None
    if documents is not None:
        images: list[str] = []
        _walk_images(documents, images)
        return images
    found: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        while stripped.startswith("-"):  # "- image: x" and nested "- - image: x"
            stripped = stripped[1:].lstrip()
        if stripped.startswith("image:"):
            found.append(stripped.split("image:", 1)[1].strip().strip("\"'"))
    return found


def problem_images(problem: Problem) -> tuple[str, ...]:
    """Container images a problem's unit test needs to pull (cached)."""

    cached = problem.__dict__.get(_IMAGES_CACHE_ATTR)
    if cached is not None:
        return cached
    images = _images_in_yaml(problem.reference_plain())
    for step in problem.unit_test.steps:
        if isinstance(step, S.ApplyManifest):
            images.extend(_images_in_yaml(step.yaml_text))
    if problem.unit_test.target == "envoy":
        images.append("envoyproxy/envoy")
    deduped: list[str] = []
    for image in images:
        if image and image not in deduped:
            deduped.append(image)
    result = tuple(deduped) or ("busybox",)
    object.__setattr__(problem, _IMAGES_CACHE_ATTR, result)
    return result


@dataclass(frozen=True)
class ClusterSimulationConfig:
    """Parameters of the evaluation-cluster simulation.

    The defaults are calibrated so the sweep reproduces Figure 5: roughly
    10 hours on a single machine, ~30 minutes on 64 workers with shared
    image caching, and a 1.5-2x caching benefit at high worker counts.
    ``slow_job_fraction`` models the heavy tail of jobs that hit wait
    timeouts or pull unusually large images, which is what limits the
    parallel speedup to ~13x in the paper rather than 64x.
    """

    num_workers: int = 64
    caching_enabled: bool = True
    internet_bandwidth_mbps: float = 100.0
    lan_bandwidth_mbps: float = 1000.0
    worker_boot_seconds: float = 180.0
    base_seconds_mean: float = 17.5
    base_seconds_jitter: float = 6.0
    envoy_base_seconds: float = 12.0
    slow_job_fraction: float = 0.08
    slow_job_extra_seconds: float = 240.0
    preloaded_images: tuple[str, ...] = (
        "nginx:latest",
        "nginx:1.25",
        "busybox:1.36",
        "alpine:3.19",
        "ubuntu:22.04",
        "redis:7",
        "mysql:8.0",
        "postgres:16",
        "httpd:2.4",
        "caddy:2",
        "haproxy:2.8",
        "registry",
    )
    seed: int = 11


@dataclass
class SimulationResult:
    """Outputs of one simulated evaluation run."""

    num_workers: int
    caching_enabled: bool
    total_seconds: float
    internet_mb: float
    lan_mb: float
    jobs: int
    per_worker_jobs: dict[str, int] = field(default_factory=dict)

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0


def job_base_seconds(
    problem: Problem,
    config: ClusterSimulationConfig,
    *,
    jitter_seconds: float = 0.0,
    slow_extra_seconds: float = 0.0,
) -> float:
    """Execution seconds of one problem's job once every image is local.

    The one place the per-job pricing formula lives: the per-target base
    time, the multi-node settling surcharge, and the 5-second floor.  The
    simulation passes its per-run random ``jitter_seconds``/heavy-tail
    draw; the :class:`~repro.evalcluster.cost.CostModel` predictor passes
    the tail's deterministic expectation instead.
    """

    base = (
        config.envoy_base_seconds
        if problem.unit_test.target == "envoy"
        else config.base_seconds_mean
    )
    base += jitter_seconds
    base += 2.0 * problem.unit_test.nodes  # multi-node problems take longer to settle
    base += slow_extra_seconds
    return max(5.0, base)


def job_images(problem: Problem) -> tuple[str, ...]:
    """Every image one problem's job pulls, cluster-overhead images included."""

    images = tuple(problem_images(problem))
    if problem.unit_test.target != "envoy":
        images += _BASE_IMAGES
    return images


def _build_jobs(problems: ProblemSet, config: ClusterSimulationConfig) -> list[EvaluationJob]:
    rng = DeterministicRNG(config.seed)
    jobs: list[EvaluationJob] = []
    for index, problem in enumerate(problems):
        jitter = rng.uniform(-config.base_seconds_jitter, config.base_seconds_jitter)
        # Heavy tail: wait timeouts, flaky pulls, oversized images.
        slow_extra = config.slow_job_extra_seconds if rng.bernoulli(config.slow_job_fraction) else 0.0
        jobs.append(
            EvaluationJob(
                job_id=f"job-{index:05d}",
                problem_id=problem.problem_id,
                images=job_images(problem),
                base_seconds=job_base_seconds(
                    problem, config, jitter_seconds=jitter, slow_extra_seconds=slow_extra
                ),
                target=problem.unit_test.target,
            )
        )
    return jobs


def simulate_evaluation(problems: ProblemSet, config: ClusterSimulationConfig) -> SimulationResult:
    """Simulate evaluating every problem on the configured cluster."""

    events = EventQueue()
    internet = SharedLink(config.internet_bandwidth_mbps)
    shared_cache = PullThroughCache(enabled=config.caching_enabled)
    master = Master()
    master.submit(_build_jobs(problems, config))

    workers = [
        Worker(
            worker_id=f"worker-{i:03d}",
            master=master,
            events=events,
            internet=internet,
            shared_cache=shared_cache,
            boot_seconds=config.worker_boot_seconds,
            lan_bandwidth_mbps=config.lan_bandwidth_mbps,
        )
        for i in range(config.num_workers)
    ]
    for worker in workers:
        # Minikube ships a preload of the most common base images, so these
        # never hit the network regardless of the pull-through cache.
        worker.image_cache.preload(config.preloaded_images)
        worker.start()
    total_seconds = events.run()

    return SimulationResult(
        num_workers=config.num_workers,
        caching_enabled=config.caching_enabled,
        total_seconds=total_seconds,
        internet_mb=shared_cache.internet_mb_total if config.caching_enabled else internet.total_mb,
        lan_mb=shared_cache.lan_mb_total,
        jobs=master.completed(),
        per_worker_jobs={w.worker_id: w.jobs_completed for w in workers},
    )


def sweep_workers(
    problems: ProblemSet,
    worker_counts: tuple[int, ...] = (1, 4, 16, 64),
    seed: int = 11,
) -> dict[bool, dict[int, float]]:
    """Reproduce Figure 5: hours to evaluate all problems, w/ and w/o caching.

    Returns ``{caching_enabled: {num_workers: hours}}``.
    """

    results: dict[bool, dict[int, float]] = {False: {}, True: {}}
    for caching in (False, True):
        for count in worker_counts:
            config = ClusterSimulationConfig(num_workers=count, caching_enabled=caching, seed=seed)
            result = simulate_evaluation(problems, config)
            results[caching][count] = result.total_hours
    return results
