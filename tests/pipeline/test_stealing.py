"""Work stealing: the steal policy's determinism under a virtual clock,
and the bit-identity of stolen schedules with sequential evaluation."""

from __future__ import annotations

import itertools

import pytest

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.evalcluster.calibration import CalibrationStore
from repro.llm.interface import GenerationRequest
from repro.llm.registry import get_model
from repro.pipeline import (
    ModelJob,
    MultiModelScheduler,
    PipelineCheckpoint,
    StealPolicy,
    model_checkpoint_base,
    shard_checkpoint_path,
)
from repro.pipeline.executors import EXECUTOR_NAMES
from repro.scoring.compiled import ReferenceStore
from repro.utils.rng import DeterministicRNG

MODELS = ["gpt-4", "llama-2-13b-chat"]


def _requests(problems):
    return [GenerationRequest(problem=p) for p in problems]


# ---------------------------------------------------------------------------
# The steal policy as a pure function
# ---------------------------------------------------------------------------

def test_policy_picks_longest_remaining():
    policy = StealPolicy()
    assert policy.choose([5.0, 9.0, 2.0], [True, True, True]) == 1
    assert policy.choose([5.0, 9.0, 2.0], [True, False, True]) == 0
    assert policy.choose([5.0, 9.0, 2.0], [False, False, False]) is None
    assert policy.choose([], []) is None


def test_policy_breaks_ties_on_lowest_index():
    policy = StealPolicy()
    assert policy.choose([3.0, 3.0, 3.0], [True, True, True]) == 0
    assert policy.choose([1.0, 3.0, 3.0], [True, True, True]) == 1


def test_policy_deprioritises_busy_jobs():
    policy = StealPolicy()
    # The longest job is mid-generation: steal from the longest *free* one.
    assert policy.choose([5.0, 9.0, 2.0], [True, True, True], busy=[False, True, False]) == 0
    # Every claimable job is busy: fall back to the longest overall.
    assert policy.choose([5.0, 9.0, 2.0], [True, True, True], busy=[True, True, True]) == 1
    assert policy.choose([5.0, 9.0, 2.0], [False, True, False], busy=[False, True, False]) == 1


# ---------------------------------------------------------------------------
# Acceptance: steal-order determinism under a seeded virtual clock
# ---------------------------------------------------------------------------

def _simulate_steal_schedule(seed: int, jobs: int, units_per_job: int, workers: int):
    """Drive the steal policy through a deterministic virtual-clock loop.

    Unit durations come from a seeded RNG; ``workers`` virtual generation
    workers claim via the policy whenever idle and "run" each claimed unit
    for its drawn duration on the virtual clock — the same decision
    sequence the real scheduler makes, minus the threads.  Returns the
    claim order and the per-worker completion times.
    """

    rng = DeterministicRNG(seed).child("steal-sim")
    durations = [
        [float(rng.child("unit", j, u).uniform(0.5, 9.5)) for u in range(units_per_job)]
        for j in range(jobs)
    ]
    remaining = [sum(job_durations) for job_durations in durations]
    next_claim = [0] * jobs
    busy_until = [0.0] * workers
    busy_job: list[int | None] = [None] * workers
    policy = StealPolicy()
    claims: list[tuple[int, int]] = []
    clock = 0.0
    while any(next_claim[j] < units_per_job for j in range(jobs)):
        worker = min(range(workers), key=lambda w: (busy_until[w], w))
        clock = max(clock, busy_until[worker])
        busy_job[worker] = None
        claimable = [next_claim[j] < units_per_job for j in range(jobs)]
        busy = [
            any(busy_job[w] == j and busy_until[w] > clock for w in range(workers))
            for j in range(jobs)
        ]
        choice = policy.choose(remaining, claimable, busy)
        if choice is None:  # pragma: no cover - loop condition prevents this
            break
        unit = next_claim[choice]
        next_claim[choice] += 1
        remaining[choice] -= durations[choice][unit]
        busy_until[worker] = clock + durations[choice][unit]
        busy_job[worker] = choice
        claims.append((choice, unit))
    return claims, sorted(busy_until)


def test_steal_order_is_deterministic_under_a_seeded_virtual_clock():
    first = _simulate_steal_schedule(seed=17, jobs=4, units_per_job=5, workers=3)
    second = _simulate_steal_schedule(seed=17, jobs=4, units_per_job=5, workers=3)
    assert first == second
    different = _simulate_steal_schedule(seed=18, jobs=4, units_per_job=5, workers=3)
    assert different[0] != first[0]  # the schedule really depends on the draws


def test_simulated_schedule_claims_jobs_in_order_and_exhaustively():
    claims, _ = _simulate_steal_schedule(seed=17, jobs=3, units_per_job=4, workers=2)
    assert len(claims) == 12
    for job in range(3):
        units = [u for j, u in claims if j == job]
        assert units == sorted(units)  # within a job, claims are in order
    # The very first claim attacks the job with the longest predicted total.
    rng = DeterministicRNG(17).child("steal-sim")
    totals = [
        sum(float(rng.child("unit", j, u).uniform(0.5, 9.5)) for u in range(4)) for j in range(3)
    ]
    assert claims[0][0] == max(range(3), key=lambda j: totals[j])


# ---------------------------------------------------------------------------
# Acceptance: stealing changes no record, with or without calibration
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def steal_problems(small_dataset):
    return list(small_dataset)[:14]


@pytest.fixture(scope="module")
def steal_truth(small_dataset, steal_problems):
    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7))
    return {
        name: benchmark.evaluate_model(name, problems=steal_problems) for name in MODELS
    }


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_steal_leaderboard_identical_across_executors(
    small_dataset, steal_problems, steal_truth, executor
):
    config = BenchmarkConfig(seed=7, executor=executor, max_workers=3, shards=3)
    result = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=steal_problems, steal=True
    )
    for name in MODELS:
        assert result[name].records == steal_truth[name].records


def test_calibrated_steal_run_is_identical_cold_and_warm(
    tmp_path, small_dataset, steal_problems, steal_truth
):
    """Two calibrated runs over one store: the cold run observes, the warm
    run plans and steals on those observations — neither moves a record."""

    config = BenchmarkConfig(
        seed=7, shards=3, shard_by="cost", calibration=tmp_path / "cal.jsonl"
    )
    cold = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=steal_problems
    )
    store = CalibrationStore(tmp_path / "cal.jsonl")
    assert len(store) > 0  # the cold run measured and persisted durations
    warm = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=steal_problems
    )
    for name in MODELS:
        assert cold[name].records == steal_truth[name].records
        assert warm[name].records == steal_truth[name].records


def test_steal_false_reproduces_the_static_schedule(
    small_dataset, steal_problems, steal_truth
):
    config = BenchmarkConfig(seed=7, shards=2, steal=False)
    result = CloudEvalBenchmark(small_dataset, config).evaluate_models(
        models=MODELS, problems=steal_problems
    )
    for name in MODELS:
        assert result[name].records == steal_truth[name].records


def test_killed_stealing_run_resumes_to_identical_result(
    tmp_path, small_dataset, steal_problems, steal_truth
):
    """Abandoning a stealing leaderboard run mid-stream and re-running it
    from the per-(model, shard) checkpoints reproduces the sequential
    evaluations exactly — with calibration observing throughout."""

    base = tmp_path / "steal.ckpt.jsonl"
    store = CalibrationStore(tmp_path / "cal.jsonl")
    benchmark = CloudEvalBenchmark(small_dataset, BenchmarkConfig(seed=7, shards=2))

    jobs = []
    for name in MODELS:
        model, requests = benchmark.requests(name, problems=steal_problems)
        jobs.append(ModelJob(model, requests, checkpoint=model_checkpoint_base(base, name)))
    first = MultiModelScheduler(
        jobs,
        shards=2,
        store=ReferenceStore(),
        batch_size=3,
        prefetch_batches=1,
        steal=True,
        calibration=store,
    )
    consumed = list(itertools.islice(first.run_iter(), 9))
    first.close()
    assert 0 < len(consumed) < 2 * len(steal_problems)

    checkpointed = 0
    for name in MODELS:
        for index in range(2):
            path = shard_checkpoint_path(model_checkpoint_base(base, name), index, 2)
            if path.exists():
                checkpointed += len(PipelineCheckpoint(path))
    assert checkpointed >= len(consumed)
    assert checkpointed < 2 * len(steal_problems)

    resumed = benchmark.evaluate_models(
        models=MODELS, problems=steal_problems, checkpoint=base, steal=True
    )
    for name in MODELS:
        assert resumed[name].records == steal_truth[name].records


def test_run_iter_streams_stragglers_without_blocking(small_original_problems):
    """With stealing, a model's finished batches stream out even while the
    other model still has work in flight — per-model order preserved."""

    problems = list(small_original_problems)[:12]
    jobs = [
        ModelJob(get_model("gpt-4"), _requests(problems)),
        ModelJob(get_model("gpt-3.5"), _requests(problems)),
    ]
    with MultiModelScheduler(
        jobs, shards=2, store=ReferenceStore(), batch_size=3, steal=True
    ) as scheduler:
        streamed = list(scheduler.run_iter())
    assert len(streamed) == 2 * len(problems)
    for model_name in ("gpt-4", "gpt-3.5"):
        ids = [record.problem_id for name, record in streamed if name == model_name]
        assert ids == [p.problem_id for p in problems]
