"""Figure 7 — Failure analysis of GPT-4, Llama-2-70B and Llama-2-7B in six categories.

Paper observations: GPT-4 makes *more* trivially-filterable category-1
mistakes than the Llama models; both Llama models produce a large number of
category-5 answers (valid YAML of the right kind that still fails the unit
test), i.e. they get the general idea but are not accurate enough.
"""

from __future__ import annotations

from benchmarks.common import bench_dataset, full_zero_shot_result
from repro.analysis.failure_modes import FailureCategory
from repro.analysis.paper_reference import PAPER_FIGURE7
from repro.analysis.tables import figure7_failure_modes

MODELS = ("gpt-4", "llama-2-70b-chat", "llama-2-7b-chat")


def test_fig7_failure_mode_histograms(benchmark):
    dataset = bench_dataset()
    result = full_zero_shot_result()
    histograms = benchmark.pedantic(
        figure7_failure_modes, args=(dataset, result), kwargs={"models": MODELS}, rounds=1, iterations=1
    )

    print("\nFigure 7 (measured counts per category, paper in parentheses):")
    for model in MODELS:
        counts = histograms[model]
        paper = PAPER_FIGURE7[model]
        row = "  ".join(
            f"#{category.value}:{counts[category]}({paper[category.value - 1]})" for category in FailureCategory
        )
        print(f"  {model:<20} {row}")

    total_problems = len(dataset.originals())
    for model in MODELS:
        assert sum(histograms[model].values()) == total_problems

    gpt4 = histograms["gpt-4"]
    llama70 = histograms["llama-2-70b-chat"]
    llama7 = histograms["llama-2-7b-chat"]

    # Pass counts (category 6) are ordered by model capability.
    assert gpt4[FailureCategory.PASSES] > llama70[FailureCategory.PASSES] > llama7[FailureCategory.PASSES]

    # Category 5 dominates the Llama models' failures ("general idea, not accurate enough").
    for histogram in (llama70, llama7):
        failures = sum(v for cat, v in histogram.items() if cat is not FailureCategory.PASSES)
        assert histogram[FailureCategory.FAILS_UNIT_TEST] > 0.4 * failures

    # Both Llama models produce many more category-5 answers than GPT-4 does.
    assert llama70[FailureCategory.FAILS_UNIT_TEST] > 1.5 * gpt4[FailureCategory.FAILS_UNIT_TEST]

    # Incomplete-YAML answers (category 3) are a substantial failure mode for every model.
    for histogram in (gpt4, llama70, llama7):
        assert histogram[FailureCategory.INCOMPLETE_YAML] >= 0.03 * total_problems
