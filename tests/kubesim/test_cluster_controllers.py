"""Tests for the cluster store and its controllers."""

from __future__ import annotations

import pytest

from repro.kubesim.cluster import Cluster
from repro.kubesim.errors import NotFoundError, ValidationError


def _deployment(name="web", namespace="default", replicas=2, image="nginx:latest", app=None):
    app = app or name
    return {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "metadata": {"name": name, "namespace": namespace},
        "spec": {
            "replicas": replicas,
            "selector": {"matchLabels": {"app": app}},
            "template": {
                "metadata": {"labels": {"app": app}},
                "spec": {"containers": [{"name": "c", "image": image, "ports": [{"containerPort": 80}]}]},
            },
        },
    }


def _service(name="web-svc", namespace="default", app="web", port=80):
    return {
        "apiVersion": "v1",
        "kind": "Service",
        "metadata": {"name": name, "namespace": namespace},
        "spec": {"selector": {"app": app}, "ports": [{"port": port, "targetPort": 80}]},
    }


def test_apply_and_get_roundtrip():
    cluster = Cluster()
    cluster.apply(_deployment())
    assert cluster.get("Deployment", "web").spec["replicas"] == 2


def test_apply_unknown_namespace_rejected():
    cluster = Cluster()
    with pytest.raises(ValidationError, match="namespace"):
        cluster.apply(_deployment(namespace="missing"))


def test_create_namespace_then_apply():
    cluster = Cluster()
    cluster.create_namespace("prod")
    cluster.apply(_deployment(namespace="prod"))
    assert cluster.exists("Deployment", "web", "prod")


def test_deployment_creates_ready_pods():
    cluster = Cluster()
    cluster.apply(_deployment(replicas=3))
    pods = cluster.list_resources("Pod", namespace="default")
    assert len(pods) == 3
    assert all(cluster.pod_is_ready(p) for p in pods)


def test_deployment_scale_down_removes_pods():
    cluster = Cluster()
    cluster.apply(_deployment(replicas=3))
    cluster.apply(_deployment(replicas=1))
    assert len(cluster.list_resources("Pod", namespace="default")) == 1


def test_unpullable_image_keeps_pods_pending():
    # Upper-case repositories pass manifest validation but cannot be pulled
    # (Docker requires lowercase repository names), so the pods stay Pending.
    cluster = Cluster()
    cluster.apply(_deployment(image="NotARealImage:Latest"))
    pods = cluster.list_resources("Pod")
    assert pods and not any(cluster.pod_is_ready(p) for p in pods)


def test_daemonset_creates_one_pod_per_node():
    cluster = Cluster(nodes=["n1", "n2", "n3"])
    manifest = _deployment(name="agent")
    manifest["kind"] = "DaemonSet"
    del manifest["spec"]["replicas"]
    cluster.apply(manifest)
    assert len(cluster.list_resources("Pod")) == 3


def test_job_pods_reach_succeeded_phase():
    cluster = Cluster()
    cluster.apply(
        {
            "apiVersion": "batch/v1",
            "kind": "Job",
            "metadata": {"name": "once"},
            "spec": {"template": {"spec": {"restartPolicy": "Never", "containers": [{"name": "c", "image": "busybox"}]}}},
        }
    )
    job = cluster.get("Job", "once")
    assert job.status["succeeded"] == 1


def test_service_collects_ready_endpoints():
    cluster = Cluster()
    cluster.apply(_deployment())
    cluster.apply(_service())
    assert cluster.service_reachable("web-svc", "default", 80)
    endpoints = cluster.get("Endpoints", "web-svc")
    assert endpoints.manifest["subsets"][0]["addresses"]


def test_service_without_matching_pods_is_unreachable():
    cluster = Cluster()
    cluster.apply(_service(app="nothing-matches"))
    assert not cluster.service_reachable("web-svc", "default", 80)


def test_service_wrong_port_is_unreachable():
    cluster = Cluster()
    cluster.apply(_deployment())
    cluster.apply(_service(port=80))
    assert not cluster.service_reachable("web-svc", "default", 9999)


def test_loadbalancer_gets_external_ip():
    cluster = Cluster()
    cluster.apply(_deployment())
    manifest = _service()
    manifest["spec"]["type"] = "LoadBalancer"
    cluster.apply(manifest)
    service = cluster.get("Service", "web-svc")
    assert service.status["loadBalancer"]["ingress"][0]["ip"]


def test_host_port_reachability():
    cluster = Cluster()
    manifest = _deployment(name="proxy")
    manifest["spec"]["template"]["spec"]["containers"][0]["ports"] = [{"containerPort": 80, "hostPort": 5000}]
    cluster.apply(manifest)
    assert cluster.host_port_reachable(5000)
    assert not cluster.host_port_reachable(5001)


def test_pending_pod_when_secret_missing_then_ready_after_creation():
    cluster = Cluster()
    pod = {
        "apiVersion": "v1",
        "kind": "Pod",
        "metadata": {"name": "uses-secret"},
        "spec": {
            "containers": [
                {
                    "name": "c",
                    "image": "nginx",
                    "env": [{"name": "PASS", "valueFrom": {"secretKeyRef": {"name": "creds", "key": "password"}}}],
                }
            ]
        },
    }
    cluster.apply(pod)
    assert not cluster.pod_is_ready(cluster.get("Pod", "uses-secret"))
    cluster.apply({"apiVersion": "v1", "kind": "Secret", "metadata": {"name": "creds"}, "stringData": {"password": "x"}})
    assert cluster.pod_is_ready(cluster.get("Pod", "uses-secret"))


def test_delete_cascades_to_owned_pods():
    cluster = Cluster()
    cluster.apply(_deployment(replicas=2))
    cluster.delete("Deployment", "web")
    assert not cluster.exists("Deployment", "web")
    assert cluster.list_resources("Pod") == []


def test_get_missing_raises_not_found():
    with pytest.raises(NotFoundError):
        Cluster().get("Pod", "ghost")


def test_list_with_label_selector():
    cluster = Cluster()
    cluster.apply(_deployment(name="a", app="x"))
    cluster.apply(_deployment(name="b", app="y"))
    pods = cluster.list_resources("Pod", label_selector={"app": "x"})
    assert pods and all(p.labels["app"] == "x" for p in pods)


def test_reset_clears_everything_but_nodes():
    cluster = Cluster(nodes=["n1", "n2"])
    cluster.apply(_deployment())
    cluster.reset()
    assert cluster.list_resources("Pod") == []
    assert len(cluster.node_names()) == 2
