"""Tests for text-level metrics."""

from __future__ import annotations

from repro.scoring.text_level import bleu, edit_distance_score, exact_match

REFERENCE = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  ports:\n  - port: 80\n"


def test_exact_match_is_strict_about_content():
    assert exact_match(REFERENCE, REFERENCE) == 1.0
    assert exact_match(REFERENCE.replace("web", "other"), REFERENCE) == 0.0


def test_exact_match_ignores_trailing_whitespace_and_blank_lines():
    noisy = REFERENCE.replace("spec:\n", "spec:   \n\n")
    assert exact_match(noisy, REFERENCE) == 1.0


def test_bleu_between_zero_and_one():
    partial = REFERENCE.replace("port: 80", "port: 8080")
    assert 0.0 < bleu(partial, REFERENCE) < 1.0


def test_edit_distance_score_orders_by_closeness():
    close = REFERENCE.replace("port: 80", "port: 8080")
    far = "kind: Service\n"
    assert edit_distance_score(close, REFERENCE) > edit_distance_score(far, REFERENCE)


def test_all_metrics_zero_for_empty_answer():
    assert bleu("", REFERENCE) == 0.0
    assert edit_distance_score("", REFERENCE) == 0.0
    assert exact_match("", REFERENCE) == 0.0
