"""Shared, cached state for the benchmark harness.

Several tables and figures are derived from the same expensive artefact —
the zero-shot evaluation of all 12 models over the full 1011-problem
dataset.  The helpers below memoise that artefact per process so each
benchmark module times only the step it is responsible for (building its
table or figure) rather than repeating the whole evaluation.

Set ``REPRO_BENCH_FAST=1`` to run the harness on a reduced corpus (useful
for CI smoke runs); the recorded numbers then cover fewer problems but the
harness exercises exactly the same code paths.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.core.benchmark import BenchmarkResult
from repro.dataset.builder import build_dataset
from repro.dataset.problem import ProblemSet
from repro.dataset.schema import Category, Variant
from repro.llm.registry import available_models

__all__ = [
    "ARTIFACTS_DIR",
    "FAST_MODE",
    "artifact_path",
    "bench_dataset",
    "bench_original_problems",
    "full_zero_shot_result",
    "multi_sample_evaluations",
    "few_shot_pass_counts",
    "zero_shot_scoring_pairs",
]

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Where benchmark side artefacts (event logs, calibration stores, score
#: caches) land by default — a gitignored directory, so runs never strand
#: ``BENCH_*.jsonl`` files (or their ``.lock`` sidecars) in the repo root.
ARTIFACTS_DIR = Path(__file__).resolve().parent / "artifacts"


def artifact_path(name: str) -> str:
    """The default path for a benchmark artefact file called ``name``."""

    ARTIFACTS_DIR.mkdir(parents=True, exist_ok=True)
    return str(ARTIFACTS_DIR / name)

_FAST_COUNTS = {
    Category.POD: 10,
    Category.DAEMONSET: 8,
    Category.SERVICE: 5,
    Category.JOB: 4,
    Category.DEPLOYMENT: 5,
    Category.OTHERS: 20,
    Category.ENVOY: 6,
    Category.ISTIO: 4,
}


@lru_cache(maxsize=1)
def bench_dataset() -> ProblemSet:
    """The dataset the harness runs on (full corpus unless FAST mode)."""

    if FAST_MODE:
        return build_dataset(category_counts=_FAST_COUNTS)
    return build_dataset()


@lru_cache(maxsize=1)
def bench_original_problems() -> tuple:
    return tuple(bench_dataset().by_variant(Variant.ORIGINAL))


@lru_cache(maxsize=1)
def full_zero_shot_result() -> BenchmarkResult:
    """Zero-shot evaluation of all 12 models over every variant (Table 4 input)."""

    benchmark = CloudEvalBenchmark(bench_dataset(), BenchmarkConfig())
    return benchmark.evaluate_models(models=available_models())


#: Models whose zero-shot responses feed the scoring-throughput benchmark;
#: spans the quality range so the response mix (perfect answers, near
#: misses, prose, empty) is representative.
SCORING_BENCH_MODELS = ("gpt-4", "gpt-3.5", "llama-2-70b-chat", "llama-7b")


@lru_cache(maxsize=1)
def zero_shot_scoring_pairs() -> tuple:
    """(problem, raw_response) pairs over the zero-shot corpus.

    Reuses the memoised zero-shot artefact — ``evaluate_model`` keeps the
    raw responses on every record — so the scoring-throughput benchmark
    times only the scoring engine, not response generation.
    """

    dataset = bench_dataset()
    result = full_zero_shot_result()
    pairs = []
    for model_name in SCORING_BENCH_MODELS:
        for record in result[model_name].records:
            pairs.append((dataset.get(record.problem_id), record.raw_response))
    return tuple(pairs)


@lru_cache(maxsize=1)
def multi_sample_evaluations():
    """Multi-sample generations for the four pass@k models (Figure 8 input).

    GPT-4 is limited to 6 samples, mirroring the paper's API-rate-limit
    constraint; the other models generate 16 samples.
    """

    dataset = bench_dataset()
    problems = list(dataset.by_variant(Variant.ORIGINAL))
    benchmark = CloudEvalBenchmark(dataset, BenchmarkConfig())
    sample_budget = {"gpt-4": 6, "gpt-3.5": 16, "palm-2-bison": 16, "llama-2-70b-chat": 16}
    evaluations = {}
    for model_name, samples in sample_budget.items():
        evaluations[model_name] = benchmark.evaluate_model(model_name, problems=problems, samples=samples)
    return evaluations


@lru_cache(maxsize=1)
def few_shot_pass_counts():
    """Few-shot evaluations for the three Table 6 models (0-3 shots)."""

    dataset = bench_dataset()
    problems = list(dataset.by_variant(Variant.ORIGINAL))
    benchmark = CloudEvalBenchmark(dataset, BenchmarkConfig())
    evaluations_by_shots = {}
    for shots in (0, 1, 2, 3):
        evaluations_by_shots[shots] = {
            model: benchmark.evaluate_model(model, problems=problems, shots=shots)
            for model in ("gpt-3.5", "llama-2-70b-chat", "llama-2-7b-chat")
        }
    return evaluations_by_shots
