"""Extract a clean YAML payload from a raw LLM response.

Although the prompt template asks for YAML only, responses routinely wrap
the configuration in prose, Markdown fences or code tags.  The paper's
post-processing policies are applied in order:

1. remove everything before a line containing the keyword ``Here`` (models
   love "Here is the YAML you asked for:"),
2. remove everything before the first line starting with ``apiVersion:``
   (Kubernetes) or ``static_resources:`` (Envoy),
3. extract the text enclosed by ``` fences, ``<code>``/``</code>``,
   ``\\begin{code}``/``\\end{code}`` or ``START SOLUTION``/``END SOLUTION``
   delimiters.

The delimiter extraction is applied first when delimiters are present
(the enclosed block is unambiguous); the keyword-based trimming handles
responses without any fencing.
"""

from __future__ import annotations

import re

__all__ = ["extract_yaml"]

_FENCE_RE = re.compile(r"```(?:yaml|yml)?\s*\n(.*?)```", re.DOTALL)
_CODE_TAG_RE = re.compile(r"<code>\s*\n?(.*?)</code>", re.DOTALL)
_BEGIN_CODE_RE = re.compile(r"\\begin\{code\}\s*\n?(.*?)\\end\{code\}", re.DOTALL)
_SOLUTION_RE = re.compile(r"START SOLUTION\s*\n(.*?)END SOLUTION", re.DOTALL)
_START_KEYS = ("apiVersion:", "static_resources:")


def _strip_before_keyword(text: str, keyword: str) -> str:
    """Drop every line up to and including the first line containing ``keyword``."""

    lines = text.splitlines()
    for index, line in enumerate(lines):
        if keyword in line:
            return "\n".join(lines[index + 1 :])
    return text


def _strip_before_start_key(text: str) -> str:
    """Drop everything before the first line that starts a YAML document."""

    lines = text.splitlines()
    for index, line in enumerate(lines):
        stripped = line.lstrip()
        if any(stripped.startswith(key) for key in _START_KEYS):
            return "\n".join(lines[index:])
    return text


def _strip_trailing_prose(text: str) -> str:
    """Drop trailing explanation paragraphs after the YAML body.

    A trailing block is considered prose when it follows a blank line and
    none of its lines look like YAML (no ``key:`` or ``- item`` shape).
    """

    yaml_line = re.compile(r"^\s*(#|-\s|[\w.\"'/@-]+\s*:)")
    lines = text.splitlines()
    end = len(lines)
    for index in range(len(lines) - 1, -1, -1):
        line = lines[index]
        if not line.strip():
            continue
        if yaml_line.match(line):
            end = index + 1
            break
    return "\n".join(lines[:end])


def extract_yaml(response: str) -> str:
    """Apply the post-processing policies and return the cleaned YAML text."""

    if not response:
        return ""
    text = response.strip()

    for pattern in (_FENCE_RE, _CODE_TAG_RE, _BEGIN_CODE_RE, _SOLUTION_RE):
        match = pattern.search(text)
        if match:
            text = match.group(1)
            break
    else:
        # No delimiters: fall back to the keyword-based trims.
        if re.search(r"^.*\bHere\b.*$", text, flags=re.MULTILINE):
            trimmed = _strip_before_keyword(text, "Here")
            # Only accept the trim when it still leaves content.
            if trimmed.strip():
                text = trimmed
        text = _strip_before_start_key(text)
        text = _strip_trailing_prose(text)

    return text.strip() + ("\n" if text.strip() else "")
