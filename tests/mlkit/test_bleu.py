"""Tests for the smoothed BLEU implementation."""

from __future__ import annotations

from repro.mlkit.bleu import bleu_score, sentence_bleu
from repro.mlkit.tokenize import yaml_tokenize


def test_identical_text_scores_one():
    text = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\n"
    assert bleu_score(text, text) == 1.0


def test_unrelated_text_scores_near_zero():
    assert bleu_score("completely different prose about cats", "apiVersion: v1\nkind: Pod\n") < 0.05


def test_empty_candidate_scores_zero():
    assert bleu_score("", "kind: Pod") == 0.0
    assert bleu_score("kind: Pod", "") == 0.0


def test_partial_overlap_is_between_zero_and_one():
    reference = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  ports:\n  - port: 80\n"
    partial = "apiVersion: v1\nkind: Service\nmetadata:\n  name: other\n"
    score = bleu_score(partial, reference)
    assert 0.0 < score < 1.0


def test_more_overlap_scores_higher():
    reference = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  ports:\n  - port: 80\n"
    close = reference.replace("port: 80", "port: 8080")
    far = "kind: Service\n"
    assert bleu_score(close, reference) > bleu_score(far, reference)


def test_brevity_penalty_penalises_short_candidates():
    reference_tokens = ["a", "b", "c", "d", "e", "f", "g", "h"]
    short = ["a", "b"]
    full = list(reference_tokens)
    assert sentence_bleu(short, reference_tokens) < sentence_bleu(full, reference_tokens)


def test_score_is_clamped_to_unit_interval():
    reference = "kind: Pod\n" * 3
    candidate = "kind: Pod\n" * 10
    assert 0.0 <= bleu_score(candidate, reference) <= 1.0


def test_tokenizer_keeps_structural_characters():
    tokens = yaml_tokenize("metadata:\n  name: nginx-service")
    assert ":" in tokens
    assert "nginx-service" in tokens
