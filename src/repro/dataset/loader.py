"""Dataset persistence: write/read the corpus as JSON.

The generated corpus is deterministic, so persisting it is optional; the
loader exists so users can export the dataset, inspect problems by hand,
or evaluate external models against a frozen copy.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dataset.problem import ProblemSet

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: ProblemSet, path: str | Path) -> Path:
    """Serialise a problem set to a JSON file and return the path."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "cloudeval-yaml-repro/v1",
        "problem_count": len(dataset),
        "problems": dataset.to_dicts(),
    }
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False), encoding="utf-8")
    return path


def load_dataset(path: str | Path) -> ProblemSet:
    """Load a problem set previously written by :func:`save_dataset`."""

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "cloudeval-yaml-repro/v1":
        raise ValueError(f"unrecognised dataset format {payload.get('format')!r}")
    return ProblemSet.from_dicts(payload["problems"])
