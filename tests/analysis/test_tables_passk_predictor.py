"""Tests for table builders, pass@k analysis and the unit-test predictor."""

from __future__ import annotations

import pytest

from repro.analysis.pass_at_k import pass_at_k, pass_at_k_curves
from repro.analysis.predictor import (
    FEATURE_NAMES,
    build_feature_matrix,
    predict_unit_test_scores,
    shap_feature_importance,
)
from repro.analysis.related import RELATED_BENCHMARKS, format_table7, repos_with_more_than
from repro.analysis.tables import (
    figure7_failure_modes,
    table1_augmentation,
    table4_zero_shot,
    table5_augmented_passes,
)
from repro.dataset.schema import Variant


def test_table1_variant_counts(small_dataset):
    stats = table1_augmentation(small_dataset)
    assert stats[Variant.ORIGINAL].count == stats[Variant.TRANSLATED].count


def test_table4_ranking_and_columns(small_benchmark_result):
    rows = table4_zero_shot(small_benchmark_result)
    assert [row["model"] for row in rows][0] == "gpt-4"
    assert rows[0]["rank"] == 1
    assert {"bleu", "unit_test", "kv_wildcard"} <= set(rows[0])
    unit_scores = [row["unit_test"] for row in rows]
    assert unit_scores == sorted(unit_scores, reverse=True)


def test_table5_pass_counts_by_variant(small_benchmark_result):
    table = table5_augmented_passes(small_benchmark_result)
    assert set(table) == set(small_benchmark_result.models())
    gpt4 = table["gpt-4"]
    assert set(gpt4) == {"original", "simplified", "translated"}
    assert all(v is None or v >= 0 for v in gpt4.values())


def test_figure7_histogram_sums_to_original_count(small_dataset, small_benchmark_result):
    histograms = figure7_failure_modes(small_dataset, small_benchmark_result, models=("gpt-4",))
    counts = histograms["gpt-4"]
    assert sum(counts.values()) == len(small_dataset.originals())


def test_pass_at_k_is_monotone(small_dataset):
    from repro.core import BenchmarkConfig, CloudEvalBenchmark

    bench = CloudEvalBenchmark(small_dataset, BenchmarkConfig(samples=6))
    problems = list(small_dataset.by_variant(Variant.ORIGINAL))
    evaluation = bench.evaluate_model("gpt-3.5", problems=problems)
    values = [pass_at_k(evaluation, k) for k in (1, 2, 4, 6)]
    assert values == sorted(values)
    assert values[-1] >= values[0]


def test_pass_at_k_curves_respect_per_model_limit(small_benchmark_result):
    curves = pass_at_k_curves(
        [small_benchmark_result["gpt-4"]], ks=(1, 2, 4, 8), max_k_per_model={"gpt-4": 4}
    )
    assert curves[0].ks == (1, 2, 4)
    normalized = curves[0].normalized()
    assert normalized[0] == pytest.approx(1.0)


def test_feature_matrix_shape(small_benchmark_result):
    X, y, model_indices = build_feature_matrix(small_benchmark_result, variant="original")
    assert X.shape[1] == len(FEATURE_NAMES)
    assert len(X) == len(y) == len(model_indices)
    assert set(y) <= {0, 1}


def test_predictor_leave_one_out_outputs(small_benchmark_result):
    outcomes = predict_unit_test_scores(small_benchmark_result, n_estimators=20)
    assert {o.model_name for o in outcomes} == set(small_benchmark_result.models())
    for outcome in outcomes:
        assert 0 <= outcome.predicted_passes <= outcome.sample_count
        assert outcome.error_percent >= 0


def test_predictor_preserves_model_ordering(small_benchmark_result):
    outcomes = {o.model_name: o for o in predict_unit_test_scores(small_benchmark_result, n_estimators=20)}
    assert outcomes["gpt-4"].predicted_passes > outcomes["codellama-7b-instruct"].predicted_passes


def test_shap_highlights_kv_wildcard(small_benchmark_result):
    importance = shap_feature_importance(small_benchmark_result, max_samples=150, n_estimators=20)
    assert set(importance) == set(FEATURE_NAMES)
    assert max(importance, key=importance.get) == "kv_wildcard"


def test_related_benchmarks_table():
    assert RELATED_BENCHMARKS[-1].name == "CloudEval-YAML"
    # The paper reports "90 out of the top 100" use more than 10 YAML files;
    # the survey table itself yields 89 strictly-greater-than-10 entries plus
    # OpenCV sitting exactly at 10.
    assert repos_with_more_than(10) in (89, 90)
    assert repos_with_more_than(9) == 90
    assert "CloudEval-YAML" in format_table7()
