"""Error types raised by the Kubernetes simulator.

The hierarchy mirrors the error classes a client sees from a real API
server: validation failures (400/422), missing objects (404) and conflicts
(409).  Unit tests and the scorer catch :class:`KubeError` to turn any of
them into a failed functional check.
"""

from __future__ import annotations

__all__ = [
    "KubeError",
    "ValidationError",
    "NotFoundError",
    "AlreadyExistsError",
    "UnsupportedKindError",
]


class KubeError(Exception):
    """Base class for all simulator errors."""


class ValidationError(KubeError):
    """A manifest failed schema or semantic validation.

    ``field`` carries the dotted path of the offending field when known,
    which makes test failures and failure-mode analysis much easier to
    read.
    """

    def __init__(self, message: str, field: str | None = None) -> None:
        self.field = field
        prefix = f"{field}: " if field else ""
        super().__init__(f"{prefix}{message}")


class NotFoundError(KubeError):
    """The requested object does not exist."""


class AlreadyExistsError(KubeError):
    """An object with the same kind/namespace/name already exists."""


class UnsupportedKindError(ValidationError):
    """The manifest's kind is not recognised by the simulator."""
