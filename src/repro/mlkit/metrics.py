"""Basic evaluation metrics for the unit-test predictor experiment."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "mean_absolute_error", "roc_auc", "relative_error"]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""

    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error between two arrays."""

    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if len(y_true) == 0:
        return 0.0
    return float(np.abs(y_true - y_pred).mean())


def relative_error(predicted: float, actual: float) -> float:
    """Relative error in percent, guarding against a zero denominator."""

    if actual == 0:
        return 0.0 if predicted == 0 else 100.0
    return abs(predicted - actual) / abs(actual) * 100.0


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic."""

    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    # Average over all positive/negative pairs with ties counted as 0.5.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    pos_rank_sum = ranks[y_true == 1].sum()
    n_pos = len(positives)
    n_neg = len(negatives)
    auc = (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    return float(auc)
