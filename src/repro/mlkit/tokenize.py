"""Tokenization for BLEU computation over YAML text.

BLEU is defined over token sequences.  For YAML we tokenize on structural
characters (``:``, ``-``, ``[``, ``]``, quotes) as well as whitespace so
that ``name: nginx-service`` becomes ``["name", ":", "nginx-service"]``.
Keeping punctuation as tokens makes the metric sensitive to structural
differences (a missing colon is a real error) while remaining insensitive
to indentation width.
"""

from __future__ import annotations

import re

__all__ = ["yaml_tokenize"]

_TOKEN_RE = re.compile(r"[A-Za-z0-9_./*]+(?:-[A-Za-z0-9_./*]+)*|[:\-\[\]{}#'\",|>]")


def yaml_tokenize(text: str) -> list[str]:
    """Tokenize YAML (or YAML-ish) text for n-gram metrics.

    The tokenizer is intentionally forgiving: it also works on prose, so
    answers that are not valid YAML still receive a (low) BLEU score rather
    than crashing the pipeline.
    """

    return _TOKEN_RE.findall(text)
