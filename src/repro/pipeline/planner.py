"""Shard planning: deciding *where* a run's requests are cut into shards.

Sharded evaluation (:mod:`repro.pipeline.sharding`) and the multi-model
scheduler (:mod:`repro.pipeline.scheduler`) both consume a
:class:`ShardPlan` — a contiguous split of the request list — but how the
cut points are chosen is a policy, and this module is its seam:

* :class:`CountPlanner` reproduces the original behaviour bit-identically:
  shards hold (almost) equal numbers of requests
  (:meth:`ShardPlan.for_size`).
* :class:`CostPlanner` balances shards by *predicted seconds* instead.
  Problems are wildly heterogeneous — an Istio bookinfo problem pulls
  half a gigabyte of images while a bare Pod problem pulls nothing — so
  equal-count shards finish minutes apart and the whole run waits on the
  slowest one.  The planner prices every request with the Figure 5 model
  (:meth:`repro.evalcluster.cost.CostModel.predict_problem_seconds`),
  accounts warm registry-cache hits *within* a shard (an image pulled for
  one problem is free for the next), and picks the contiguous partition
  minimising the maximum predicted shard duration.

Both planners emit contiguous plans, which is the property the merge
layer relies on: concatenating per-shard results in shard order
reproduces the original request order, so the planner choice — like the
executor choice — can never change a ScoreCard.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Protocol, Sequence, TypeVar, runtime_checkable

from repro.evalcluster.cost import CostModel
from repro.kubesim.images import normalize_image

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.interface import GenerationRequest

__all__ = [
    "PLANNER_NAMES",
    "ShardPlan",
    "ShardPlanner",
    "CountPlanner",
    "CostPlanner",
    "resolve_planner",
]

T = TypeVar("T")

#: Planner specs accepted by ``BenchmarkConfig.shard_by``.
PLANNER_NAMES: tuple[str, ...] = ("count", "cost")

#: Bisection steps when searching for the minimal feasible shard duration.
#: Sixty halvings of the [max-item, total] interval put the cap within
#: machine precision of optimal for any realistic corpus.
_BISECTION_STEPS = 60


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous split of ``total`` work units into shards.

    Contiguity is the property that makes merging trivial *and* exact:
    concatenating per-shard results in shard order reproduces the original
    request order, so a sharded run streams records in exactly the same
    sequence as an unsharded one.

    By default the split is balanced by count (sizes differ by at most
    one); a planner may instead supply ``explicit_sizes`` — arbitrary
    positive cut sizes, e.g. balanced by predicted cost.
    """

    total: int
    num_shards: int
    explicit_sizes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("total must be >= 0")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.explicit_sizes is not None:
            if len(self.explicit_sizes) != self.num_shards:
                raise ValueError(
                    f"explicit_sizes has {len(self.explicit_sizes)} entries "
                    f"for {self.num_shards} shards"
                )
            if sum(self.explicit_sizes) != self.total:
                raise ValueError(
                    f"explicit_sizes sum to {sum(self.explicit_sizes)}, expected {self.total}"
                )
            if any(size < 1 for size in self.explicit_sizes):
                raise ValueError("explicit_sizes must all be >= 1 (empty shards are clamped away)")

    @classmethod
    def for_size(cls, total: int, num_shards: int) -> "ShardPlan":
        """A count-balanced plan over ``total`` units, clamping away empty shards."""

        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        return cls(total=total, num_shards=max(1, min(num_shards, total)))

    @classmethod
    def from_sizes(cls, sizes: Sequence[int]) -> "ShardPlan":
        """A plan with explicit per-shard sizes; zero-size shards are dropped.

        An all-empty (or empty) size list degenerates to the same plan
        ``for_size(0, 1)`` produces, so downstream code sees one canonical
        empty shape.
        """

        cleaned = tuple(int(size) for size in sizes)
        if any(size < 0 for size in cleaned):
            raise ValueError("shard sizes must be >= 0")
        nonempty = tuple(size for size in cleaned if size > 0)
        if not nonempty:
            return cls(total=0, num_shards=1)
        return cls(total=sum(nonempty), num_shards=len(nonempty), explicit_sizes=nonempty)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Per-shard sizes; count-balanced unless the planner cut explicitly."""

        if self.explicit_sizes is not None:
            return self.explicit_sizes
        base, extra = divmod(self.total, self.num_shards)
        return tuple(base + (1 if index < extra else 0) for index in range(self.num_shards))

    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``(start, stop)`` index ranges of every shard."""

        out: list[tuple[int, int]] = []
        start = 0
        for size in self.sizes:
            out.append((start, start + size))
            start += size
        return tuple(out)

    @cached_property
    def _stops(self) -> tuple[int, ...]:
        """Cumulative end offsets of every shard (cached; the plan is frozen)."""

        stops: list[int] = []
        position = 0
        for size in self.sizes:
            position += size
            stops.append(position)
        return tuple(stops)

    def shard_of(self, index: int) -> int:
        """Which shard owns global work-unit ``index``.

        Binary search over the cumulative shard offsets — the schedulers
        ask this per batch, and a linear scan over the bounds made the
        lookup quadratic across a run.
        """

        if not 0 <= index < self.total:
            raise IndexError(f"index {index} out of range for {self.total} units")
        return bisect_right(self._stops, index)

    def split(self, items: Sequence[T]) -> list[list[T]]:
        """Slice ``items`` into per-shard lists."""

        if len(items) != self.total:
            raise ValueError(f"expected {self.total} items, got {len(items)}")
        return [list(items[start:stop]) for start, stop in self.bounds()]


@runtime_checkable
class ShardPlanner(Protocol):
    """Policy choosing the contiguous cut points of a sharded run."""

    def plan(
        self, requests: Sequence["GenerationRequest"], num_shards: int
    ) -> ShardPlan:  # pragma: no cover - protocol
        ...


class CountPlanner:
    """Balance shards by request count — the original contiguous split.

    Delegates to :meth:`ShardPlan.for_size`, so its plans are bit-identical
    to every pre-planner sharded run.
    """

    name = "count"

    def plan(self, requests: Sequence["GenerationRequest"], num_shards: int) -> ShardPlan:
        return ShardPlan.for_size(len(requests), num_shards)


class CostPlanner:
    """Balance shards by predicted wall-clock seconds (Figure 5 model).

    Every request is priced as its problem's predicted evaluation time —
    base execution seconds plus image-pull seconds, where an image already
    pulled by an earlier request *in the same shard* costs nothing (the
    warm registry-cache effect).  The planner then finds the contiguous
    partition minimising the maximum predicted shard duration, via
    bisection on the duration cap with a greedy feasibility scan.

    Contiguity is preserved, so the merged records — and every ScoreCard —
    are identical to a count-planned or unsharded run; only the shard
    *boundaries* move.
    """

    name = "cost"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # -- request pricing ----------------------------------------------------
    def _price(
        self, requests: Sequence["GenerationRequest"]
    ) -> tuple[
        list[float],
        list[tuple[object, ...]],
        list[tuple[object, ...]],
        dict[object, float],
    ]:
        """Per-request base seconds, charge/warm image keys, pull prices.

        Images are keyed by their normalized ``(repository, tag)`` so two
        spellings of one image ("nginx" / "nginx:latest") share a single
        cache slot, exactly as the registry-cache model treats them.  The
        *charge* list prices a request's pulls; the *warm* list is what
        the request leaves in the shard's cache — they differ only under
        calibration, where an observed problem's pulls are already inside
        its measured seconds but its images still warm the cache.
        """

        model = self.cost_model
        base: list[float] = []
        charges: list[tuple[object, ...]] = []
        warms: list[tuple[object, ...]] = []
        pull_seconds: dict[object, float] = {}
        for request in requests:
            problem = request.problem
            base.append(model.predict_base_seconds(problem))
            charge_keys = []
            for image in model.problem_charge_images(problem):
                key = normalize_image(image)
                charge_keys.append(key)
                if key not in pull_seconds:
                    pull_seconds[key] = model.image_pull_seconds(image)
            charges.append(tuple(charge_keys))
            warms.append(
                tuple(normalize_image(image) for image in model.problem_pull_images(problem))
            )
        return base, charges, warms, pull_seconds

    @staticmethod
    def _greedy_sizes(
        cap: float,
        base: Sequence[float],
        charges: Sequence[tuple[str, ...]],
        warms: Sequence[tuple[str, ...]],
        pull_seconds: dict[str, float],
    ) -> list[int]:
        """Contiguous shards whose predicted duration stays under ``cap``.

        A request that would push the current shard over the cap starts a
        new (cold-cache) shard; a single request always fits alone because
        the cap never drops below the most expensive cold request.
        """

        sizes: list[int] = []
        current = 0
        current_seconds = 0.0
        warm: set[str] = set()
        for index in range(len(base)):
            marginal = base[index] + sum(
                pull_seconds[image] for image in set(charges[index]) if image not in warm
            )
            if current and current_seconds + marginal > cap:
                sizes.append(current)
                current = 0
                current_seconds = 0.0
                warm = set()
                marginal = base[index] + sum(pull_seconds[image] for image in set(charges[index]))
            current += 1
            current_seconds += marginal
            warm.update(warms[index])
        if current:
            sizes.append(current)
        return sizes

    # -- planning -----------------------------------------------------------
    def plan(self, requests: Sequence["GenerationRequest"], num_shards: int) -> ShardPlan:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        total = len(requests)
        shards = max(1, min(num_shards, total))
        if total == 0 or shards == 1:
            return ShardPlan.for_size(total, shards)

        base, charges, warms, pull_seconds = self._price(requests)
        cold = [
            item + sum(pull_seconds[image] for image in set(pulls))
            for item, pulls in zip(base, charges)
        ]
        low = max(cold)  # below this, the most expensive request fits nowhere
        high = sum(cold)  # one shard holding everything is always feasible
        for _ in range(_BISECTION_STEPS):
            mid = (low + high) / 2.0
            if len(self._greedy_sizes(mid, base, charges, warms, pull_seconds)) <= shards:
                high = mid
            else:
                low = mid
        return ShardPlan.from_sizes(self._greedy_sizes(high, base, charges, warms, pull_seconds))

    def predicted_durations(
        self, requests: Sequence["GenerationRequest"], plan: ShardPlan
    ) -> tuple[float, ...]:
        """Predicted seconds of every shard of ``plan`` over ``requests``.

        Each shard starts with a cold image cache that stays warm across
        its problems — the same accounting the planner balances on.
        """

        return tuple(
            self.cost_model.predict_problems_seconds(request.problem for request in chunk)
            for chunk in plan.split(list(requests))
        )


def resolve_planner(
    planner: ShardPlanner | None,
    shard_by: str = "count",
    cost_model: CostModel | None = None,
) -> ShardPlanner:
    """Turn a config (explicit planner instance, else a ``shard_by`` spec)
    into a planner; ``cost_model`` seeds the cost planner's predictions."""

    if planner is not None:
        return planner
    if shard_by == "count":
        return CountPlanner()
    if shard_by == "cost":
        return CostPlanner(cost_model=cost_model)
    raise ValueError(f"unknown shard_by {shard_by!r} (expected one of {PLANNER_NAMES})")
