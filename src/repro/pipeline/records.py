"""Per-record result types produced by the evaluation pipeline.

These types used to live in :mod:`repro.core.benchmark`; they moved here
when evaluation was decomposed into stages, because the pipeline — not the
benchmark driver — is what produces them.  ``repro.core.benchmark``
re-exports both names, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.scoring.aggregate import METRIC_NAMES, ScoreCard

__all__ = ["EvaluationRecord", "ModelEvaluation", "record_to_dict", "record_from_dict"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One scored response.

    ``generate_seconds``/``score_seconds`` are the *measured* wall-clock
    durations of the record's generation-side and scoring-side stage work.
    They are excluded from equality: two runs of the same request produce
    the same record even though their wall-clocks differ, which is what
    lets the executor/planner/scheduler equivalence suites assert
    bit-identity while every run still ships ground-truth durations for
    the cost-model calibration loop.
    """

    model_name: str
    problem_id: str
    base_id: str
    category: str
    application: str
    variant: str
    has_code_context: bool
    solution_lines: int
    question_tokens: int
    shots: int
    sample_index: int
    scores: ScoreCard
    raw_response: str = ""
    error: str = ""
    generate_seconds: float = field(default=0.0, compare=False)
    score_seconds: float = field(default=0.0, compare=False)

    @property
    def key(self) -> tuple[str, str, int, int]:
        """Identity of the unit of work: (model, problem, shots, sample)."""

        return (self.model_name, self.problem_id, self.shots, self.sample_index)

    @property
    def measured_seconds(self) -> float:
        """Total measured stage seconds (generation plus scoring) — the
        ground-truth duration the calibration loop feeds back into the
        cost model's per-problem predictions."""

        return self.generate_seconds + self.score_seconds


def record_to_dict(record: EvaluationRecord) -> dict[str, Any]:
    """Serialise a record (checkpoint format); inverse of :func:`record_from_dict`."""

    data = {f: getattr(record, f) for f in record.__dataclass_fields__ if f != "scores"}
    data["scores"] = {f: getattr(record.scores, f) for f in record.scores.__dataclass_fields__}
    return data


def record_from_dict(data: Mapping[str, Any]) -> EvaluationRecord:
    """Rebuild a record from its checkpoint dictionary."""

    payload = dict(data)
    payload["scores"] = ScoreCard(**payload["scores"])
    return EvaluationRecord(**payload)


@dataclass
class ModelEvaluation:
    """All scored responses of one model plus aggregation helpers."""

    model_name: str
    records: list[EvaluationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # -- filters ------------------------------------------------------------
    def filter(self, **criteria: object) -> list[EvaluationRecord]:
        """Select records matching every keyword criterion (attribute equality)."""

        out = []
        for record in self.records:
            if all(getattr(record, key) == value for key, value in criteria.items()):
                out.append(record)
        return out

    def first_samples(self) -> list[EvaluationRecord]:
        """Records of the first sample only (the zero-/few-shot view)."""

        return [r for r in self.records if r.sample_index == 0]

    # -- aggregations ---------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of first-sample records that were actually scored.

        A record carrying an ``error`` — a failed endpoint request, or a
        degraded fleet slot (job abandoned or quarantined) — contributes
        nothing to the metric means; ``coverage`` is what makes that loss
        visible on the leaderboard instead of silently shrinking the
        denominator.  ``1.0`` when every record scored (or there are none).
        """

        records = self.first_samples()
        if not records:
            return 1.0
        return sum(1 for r in records if not r.error) / len(records)

    def mean_scores(self, records: Sequence[EvaluationRecord] | None = None) -> dict[str, float]:
        """Average every metric over ``records`` (default: first samples).

        Error-marked records (including degraded fleet slots) are
        excluded: their zero scores describe an infrastructure failure,
        not the model, and averaging them in would punish the model for
        a flaky fleet.  The exclusion is reported via :attr:`coverage`.
        """

        records = self.first_samples() if records is None else list(records)
        records = [r for r in records if not r.error]
        if not records:
            return {name: 0.0 for name in METRIC_NAMES}
        # One pass over the records, collecting every metric column as we go.
        columns: dict[str, list[float]] = {name: [] for name in METRIC_NAMES}
        for record in records:
            scores = record.scores
            for name in METRIC_NAMES:
                columns[name].append(getattr(scores, name))
        return {name: float(np.mean(values)) for name, values in columns.items()}

    def pass_count(self, variant: str | None = None, shots: int | None = None) -> int:
        """Number of problems whose first sample passes the unit test."""

        count = 0
        for record in self.first_samples():
            if variant is not None and record.variant != variant:
                continue
            if shots is not None and record.shots != shots:
                continue
            if record.scores.unit_test >= 1.0:
                count += 1
        return count

    def unit_test_score(self, variant: str | None = None) -> float:
        """Mean unit-test score over first samples (optionally one variant)."""

        records = self.first_samples()
        if variant is not None:
            records = [r for r in records if r.variant == variant]
        if not records:
            return 0.0
        return float(np.mean([r.scores.unit_test for r in records]))
