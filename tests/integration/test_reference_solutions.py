"""Integration: every reference solution in the full corpus passes its own unit test."""

from __future__ import annotations

from collections import Counter

from repro.scoring.function_level import run_unit_test


def test_every_reference_solution_passes_its_unit_test(full_original_problems):
    failures = []
    for problem in full_original_problems:
        result = run_unit_test(problem, problem.reference_plain())
        if not result.passed:
            failures.append((problem.problem_id, result.failed_step, result.message))
    assert not failures, f"{len(failures)} reference solutions fail their own unit tests: {failures[:5]}"


def test_reference_solutions_score_perfectly_on_yaml_aware_metrics(full_original_problems):
    from repro.scoring.yaml_aware import key_value_wildcard_match

    imperfect = [
        problem.problem_id
        for problem in full_original_problems
        if key_value_wildcard_match(problem.reference_plain(), problem.reference_yaml) < 0.999
    ]
    assert not imperfect, f"references not self-consistent: {imperfect[:5]}"


def test_unit_tests_reject_an_obviously_wrong_answer(full_original_problems):
    wrong = "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: wrong-answer\ndata:\n  a: b\n"
    passes = sum(1 for problem in full_original_problems if run_unit_test(problem, wrong).passed)
    assert passes == 0


def test_every_category_has_multiple_distinct_templates(full_original_problems):
    slug_families = Counter()
    for problem in full_original_problems:
        family = "-".join(str(problem.metadata["slug"]).split("-")[:-1])
        slug_families[(problem.category, family)] += 1
    families_per_category = Counter(category for category, _ in slug_families)
    assert all(count >= 4 for count in families_per_category.values())
