"""Tests for the kubectl facade."""

from __future__ import annotations

import pytest

from repro.kubesim import Kubectl
from repro.kubesim.errors import KubeError

DEPLOYMENT_AND_SERVICE = """
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
  namespace: shop
spec:
  replicas: 2
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: web
        image: nginx:latest
        ports:
        - containerPort: 80
---
apiVersion: v1
kind: Service
metadata:
  name: web-svc
  namespace: shop
spec:
  selector:
    app: web
  ports:
  - port: 80
    targetPort: 80
  type: LoadBalancer
"""


@pytest.fixture()
def kubectl() -> Kubectl:
    k = Kubectl()
    k.create_namespace("shop")
    k.apply(DEPLOYMENT_AND_SERVICE)
    return k


def test_apply_multi_document(kubectl: Kubectl):
    assert kubectl.cluster.exists("Deployment", "web", "shop")
    assert kubectl.cluster.exists("Service", "web-svc", "shop")


def test_apply_empty_raises():
    with pytest.raises(KubeError):
        Kubectl().apply("\n---\n")


def test_get_with_jsonpath(kubectl: Kubectl):
    image = kubectl.get("Deployment", name="web", namespace="shop", jsonpath="{.spec.template.spec.containers[0].image}")
    assert image == "nginx:latest"


def test_get_list_with_selector(kubectl: Kubectl):
    names = kubectl.get("Pod", namespace="shop", selector="app=web", jsonpath="{.items[*].metadata.name}")
    assert len(names.split()) == 2


def test_wait_deployment_available(kubectl: Kubectl):
    assert kubectl.wait("Deployment", "available", name="web", namespace="shop")


def test_wait_on_missing_object_returns_false(kubectl: Kubectl):
    assert not kubectl.wait("Deployment", "available", name="ghost", namespace="shop")


def test_wait_pods_by_selector(kubectl: Kubectl):
    assert kubectl.wait("Pod", "Ready", selector={"app": "web"}, namespace="shop")


def test_describe_contains_fields(kubectl: Kubectl):
    description = kubectl.describe("Service", "web-svc", "shop")
    assert "Name:         web-svc" in description
    assert "LoadBalancer" in description


def test_describe_ingress_backends():
    k = Kubectl()
    k.apply(
        """
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: ing
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: test-app
            port:
              number: 5000
"""
    )
    assert "test-app:5000" in k.describe("Ingress", "ing")


def test_logs_lists_containers(kubectl: Kubectl):
    pod_name = kubectl.get("Pod", namespace="shop", selector="app=web", jsonpath="{.items[0].metadata.name}")
    logs = kubectl.logs(pod_name, namespace="shop")
    assert "nginx" in logs


def test_delete_removes_object(kubectl: Kubectl):
    kubectl.delete("Service", "web-svc", "shop")
    assert not kubectl.cluster.exists("Service", "web-svc", "shop")


def test_apply_with_namespace_override():
    k = Kubectl()
    k.create_namespace("injected")
    k.apply(
        "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: cm\ndata:\n  a: b\n",
        namespace="injected",
    )
    assert k.cluster.exists("ConfigMap", "cm", "injected")
