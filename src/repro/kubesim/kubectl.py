"""A ``kubectl``-like facade over the simulated cluster.

The dataset's unit tests are expressed as structured step programs (see
:mod:`repro.testexec`), but the individual operations map one-to-one onto
kubectl verbs.  This facade mirrors the behaviour unit tests depend on:

* ``apply`` parses YAML (possibly multi-document) and applies it,
* ``get`` supports ``-o jsonpath`` expressions and ``-l`` label selectors,
* ``wait`` blocks (logically — the simulator is synchronous) until the
  requested condition holds or reports a timeout,
* ``describe`` renders a textual description for ``grep``-style checks,
* ``delete`` removes objects, and ``create_namespace`` mirrors
  ``kubectl create ns``.
"""

from __future__ import annotations

import copy
from typing import Any, Mapping

from repro.kubesim.cluster import Cluster
from repro.kubesim.errors import KubeError, NotFoundError
from repro.kubesim.jsonpath import render_jsonpath
from repro.kubesim.resources import Resource
from repro.kubesim.selectors import matches_label_map, parse_kubectl_selector
from repro.yamlkit.parsing import load_all_documents

__all__ = ["Kubectl"]


class Kubectl:
    """Facade mirroring the kubectl operations used by dataset unit tests."""

    def __init__(self, cluster: Cluster | None = None) -> None:
        self.cluster = cluster or Cluster()

    # -- mutations ---------------------------------------------------------
    def create_namespace(self, name: str) -> str:
        """``kubectl create namespace <name>``."""

        self.cluster.create_namespace(name)
        return f"namespace/{name} created"

    def apply(self, yaml_text: str, namespace: str | None = None) -> list[Resource]:
        """``kubectl apply -f -`` for one or more documents."""

        return self._apply_documents(load_all_documents(yaml_text), namespace, caller_owned=False)

    def apply_parsed(self, documents: list[Any], namespace: str | None = None) -> list[Resource]:
        """:meth:`apply` for documents that are already parsed.

        The caller's documents are never mutated (``apply`` re-parses the
        text on every call, so repeated applies must not see earlier
        namespace defaulting either).
        """

        return self._apply_documents(documents, namespace, caller_owned=True)

    def _apply_documents(self, documents: list[Any], namespace: str | None, caller_owned: bool) -> list[Resource]:
        if not documents:
            raise KubeError("no objects passed to apply")
        applied: list[Resource] = []
        for document in documents:
            if not isinstance(document, dict):
                raise KubeError("cannot apply a non-mapping YAML document")
            if namespace is not None:
                if caller_owned:
                    # Shared documents must not observe the defaulting.
                    document = copy.deepcopy(document)
                document.setdefault("metadata", {}).setdefault("namespace", namespace)
            applied.append(self.cluster.apply(document))
        return applied

    def delete(self, kind: str, name: str, namespace: str = "default") -> str:
        """``kubectl delete <kind> <name>``."""

        self.cluster.delete(kind, name, namespace)
        return f"{kind.lower()} \"{name}\" deleted"

    # -- reads ---------------------------------------------------------------
    def _select(
        self,
        kind: str,
        name: str | None,
        namespace: str,
        selector: str | Mapping[str, str] | None,
    ) -> list[Resource]:
        if name:
            return [self.cluster.get(kind, name, namespace)]
        label_map: Mapping[str, str] | None
        if isinstance(selector, str):
            label_map = parse_kubectl_selector(selector)
        else:
            label_map = selector
        resources = self.cluster.list_resources(kind, namespace=namespace)
        if label_map:
            resources = [r for r in resources if matches_label_map(r.labels, label_map)]
        return resources

    def get(
        self,
        kind: str,
        name: str | None = None,
        namespace: str = "default",
        selector: str | Mapping[str, str] | None = None,
        jsonpath: str | None = None,
    ) -> Any:
        """``kubectl get`` returning objects, a list wrapper, or JSONPath text."""

        resources = self._select(kind, name, namespace, selector)
        if name:
            document: Any = resources[0].to_dict()
        else:
            document = {"apiVersion": "v1", "kind": "List", "items": [r.to_dict() for r in resources]}
        if jsonpath:
            return render_jsonpath(document, jsonpath)
        return document

    def get_resource(self, kind: str, name: str, namespace: str = "default") -> Resource:
        """Typed accessor used by istio/envoy helpers."""

        return self.cluster.get(kind, name, namespace)

    def describe(self, kind: str, name: str, namespace: str = "default") -> str:
        """``kubectl describe`` — a flat textual rendering for grep checks."""

        resource = self.cluster.get(kind, name, namespace)
        lines = [f"Name:         {resource.name}", f"Namespace:    {resource.namespace}", f"Kind:         {resource.kind}"]
        if resource.labels:
            lines.append("Labels:       " + ",".join(f"{k}={v}" for k, v in sorted(resource.labels.items())))
        lines.extend(_flatten("", resource.to_dict()))
        if resource.kind == "Ingress":
            lines.extend(_describe_ingress_backends(resource))
        if resource.kind == "Service":
            endpoints = resource.status.get("endpoints", [])
            lines.append("Endpoints:    " + ", ".join(a.get("ip", "") for a in endpoints))
        return "\n".join(lines)

    def logs(self, pod_name: str, namespace: str = "default") -> str:
        """``kubectl logs`` — synthetic but stable output per container."""

        pod = self.cluster.get("Pod", pod_name, namespace)
        lines = []
        for status in pod.status.get("containerStatuses", []):
            state = "started" if status.get("ready") else "waiting"
            lines.append(f"container {status.get('name')} ({status.get('image')}): {state}")
        return "\n".join(lines)

    # -- wait ------------------------------------------------------------------
    def wait(
        self,
        kind: str,
        condition: str,
        name: str | None = None,
        namespace: str = "default",
        selector: str | Mapping[str, str] | None = None,
        timeout_seconds: int = 60,
    ) -> bool:
        """``kubectl wait --for=condition=<condition>``.

        The simulator is synchronous, so this simply checks whether the
        condition already holds for every selected object; ``timeout_seconds``
        is accepted for interface parity and recorded for the time model.
        """

        del timeout_seconds  # state is already converged in the simulator
        try:
            resources = self._select(kind, name, namespace, selector)
        except NotFoundError:
            return False
        if not resources:
            return False
        condition = condition.lower()
        return all(self._condition_holds(resource, condition) for resource in resources)

    def _condition_holds(self, resource: Resource, condition: str) -> bool:
        if resource.kind == "Pod":
            if condition == "ready":
                return self.cluster.pod_is_ready(resource)
            if condition in ("complete", "succeeded"):
                return resource.status.get("phase") == "Succeeded"
        if resource.kind in ("Deployment", "StatefulSet", "ReplicaSet"):
            status = resource.status
            if condition in ("available", "ready"):
                desired = resource.spec.get("replicas", 1) or 0
                return int(status.get("readyReplicas", 0) or 0) >= int(desired)
        if resource.kind == "DaemonSet" and condition in ("available", "ready"):
            status = resource.status
            return int(status.get("numberReady", 0)) >= int(status.get("desiredNumberScheduled", 1))
        if resource.kind == "Job" and condition in ("complete", "completed"):
            return any(
                c.get("type") == "Complete" and c.get("status") == "True"
                for c in resource.status.get("conditions", [])
            )
        if resource.kind == "Ingress" and condition == "synced":
            # A validated Ingress in the simulator is synced by definition.
            return True
        # Generic fallback: look through status conditions.
        for cond in resource.status.get("conditions", []):
            if str(cond.get("type", "")).lower() == condition:
                return cond.get("status") == "True"
        return False


def _flatten(prefix: str, value: Any) -> list[str]:
    """Flatten nested structures into ``path: value`` description lines."""

    lines: list[str] = []
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            lines.extend(_flatten(path, child))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            lines.extend(_flatten(f"{prefix}[{index}]", child))
    else:
        lines.append(f"{prefix}: {value}")
    return lines


def _describe_ingress_backends(resource: Resource) -> list[str]:
    """Render Ingress backends the way ``kubectl describe ingress`` does."""

    lines: list[str] = []
    for rule in resource.spec.get("rules", []) or []:
        if not isinstance(rule, dict):
            continue
        for path in (rule.get("http") or {}).get("paths", []) or []:
            if not isinstance(path, dict):
                continue
            service = (path.get("backend") or {}).get("service") or {}
            name = service.get("name", "")
            port = service.get("port") or {}
            port_repr = port.get("number", port.get("name", ""))
            lines.append(f"Backends:     {name}:{port_repr} ({path.get('path', '/')})")
    return lines
