"""Failure-mode analysis (Figure 7).

Answers are grouped into the paper's six categories, ordered by how close
they are to a correct answer:

1. empty or shorter than 3 lines,
2. longer than 3 lines but without the ``kind`` field (``static_resources``
   for Envoy problems),
3. contains ``kind`` but is not a complete/parsable YAML file,
4. valid YAML but the ``kind`` field is incorrect,
5. valid YAML with the correct ``kind`` that still fails the unit test,
6. correct YAML that passes the unit test.
"""

from __future__ import annotations

from collections import Counter
from enum import IntEnum

from repro.dataset.problem import Problem
from repro.postprocess import extract_yaml
from repro.yamlkit.parsing import YamlParseError, load_all_documents

__all__ = ["FailureCategory", "classify_answer", "failure_histogram"]


class FailureCategory(IntEnum):
    """The six answer categories of Figure 7 (6 = passes the unit test)."""

    EMPTY = 1
    NO_KIND = 2
    INCOMPLETE_YAML = 3
    WRONG_KIND = 4
    FAILS_UNIT_TEST = 5
    PASSES = 6


def _expected_kinds(problem: Problem) -> set[str]:
    """Kinds that count as "correct" for the problem."""

    expected = {str(problem.metadata.get("primary_kind", ""))}
    for line in problem.reference_plain().splitlines():
        stripped = line.strip()
        if stripped.startswith("kind:"):
            expected.add(stripped.split(":", 1)[1].strip())
    return {k for k in expected if k}


def classify_answer(problem: Problem, raw_response: str, unit_test_passed: bool) -> FailureCategory:
    """Assign a raw response to one of the six categories."""

    if unit_test_passed:
        return FailureCategory.PASSES

    extracted = extract_yaml(raw_response)
    text = extracted if extracted.strip() else raw_response
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 3:
        return FailureCategory.EMPTY

    is_envoy = problem.unit_test.target == "envoy"
    marker = "static_resources" if is_envoy else "kind"
    if not any(marker in line for line in lines):
        return FailureCategory.NO_KIND

    try:
        documents = [d for d in load_all_documents(text) if isinstance(d, dict)]
        parse_ok = bool(documents)
    except YamlParseError:
        documents = []
        parse_ok = False
    if not parse_ok:
        return FailureCategory.INCOMPLETE_YAML

    if is_envoy:
        # For Envoy the presence of a parsable static_resources section plays
        # the role of a correct kind.
        has_static = any("static_resources" in d for d in documents)
        return FailureCategory.FAILS_UNIT_TEST if has_static else FailureCategory.WRONG_KIND

    expected = _expected_kinds(problem)
    answer_kinds = {str(d.get("kind", "")) for d in documents}
    if expected and not (answer_kinds & expected):
        return FailureCategory.WRONG_KIND
    return FailureCategory.FAILS_UNIT_TEST


def failure_histogram(
    problems: list[Problem],
    responses: dict[str, str],
    unit_test_results: dict[str, bool],
) -> dict[FailureCategory, int]:
    """Count categories over a set of problems.

    ``responses`` and ``unit_test_results`` are keyed by ``problem_id``.
    """

    counts: Counter[FailureCategory] = Counter()
    for problem in problems:
        response = responses.get(problem.problem_id, "")
        passed = unit_test_results.get(problem.problem_id, False)
        counts[classify_answer(problem, response, passed)] += 1
    return {category: counts.get(category, 0) for category in FailureCategory}
