"""Plan an evaluation cluster: size workers, caching and budget before running.

Uses the discrete-event simulation of the cloud evaluation framework (§3.3)
and the cost model (§3.4) to answer: "how many workers do I need to grade
all 1011 problems within my deadline, and what will the run cost?" — then
demonstrates that the very same master/worker job queue also *executes*
real work: a batch of reference answers is unit-tested through the cluster
runtime's job/claim/report protocol.

Run with::

    python examples/plan_evaluation_cluster.py
"""

from __future__ import annotations

from repro import build_dataset, score_answer
from repro.evalcluster import (
    ClusterSimulationConfig,
    EvaluationJob,
    benchmark_cost_table,
    run_jobs,
    simulate_evaluation,
)

DEADLINE_HOURS = 1.0


def main() -> None:
    dataset = build_dataset()
    print(f"Planning evaluation of {len(dataset)} problems (deadline: {DEADLINE_HOURS} h).\n")

    print(f"{'workers':>8} {'caching':>8} {'hours':>8} {'internet GB':>12} {'jobs/worker (max)':>18}")
    chosen = None
    for caching in (False, True):
        for workers in (1, 4, 16, 32, 64):
            config = ClusterSimulationConfig(num_workers=workers, caching_enabled=caching)
            result = simulate_evaluation(dataset, config)
            busiest = max(result.per_worker_jobs.values())
            print(
                f"{workers:>8} {str(caching):>8} {result.total_hours:>8.2f} "
                f"{result.internet_mb / 1024:>12.1f} {busiest:>18}"
            )
            if caching and chosen is None and result.total_hours <= DEADLINE_HOURS:
                chosen = (workers, result.total_hours)

    if chosen:
        print(f"\nSmallest cached cluster meeting the deadline: {chosen[0]} workers ({chosen[1]:.2f} h).")
    else:
        print("\nNo configuration meets the deadline; add workers or relax the deadline.")

    print("\nBudget (Table 3 style):")
    for item, dollars in benchmark_cost_table(dataset).items():
        print(f"  {item:<28} ${dollars:.2f}")

    # The same queue, executing for real: submit each problem's reference
    # answer as a job payload and let in-process workers score it.
    sample = list(dataset)[:12]
    jobs = [
        EvaluationJob(
            job_id=f"job-{problem.problem_id}",
            problem_id=problem.problem_id,
            payload=lambda p=problem: score_answer(p, p.reference_plain()).unit_test,
        )
        for problem in sample
    ]
    reports = run_jobs(jobs, num_workers=4)
    passed = sum(1 for r in reports.values() if r.passed and r.result >= 1.0)
    print(f"\nCluster runtime check: {passed}/{len(jobs)} reference answers pass "
          f"their unit tests when executed through the job queue.")


if __name__ == "__main__":
    main()
