"""Tests for the image caches, master/worker scheduling and the Figure 5 sweep."""

from __future__ import annotations

import pytest

from repro.dataset.schema import Category
from repro.evalcluster import (
    ClusterSimulationConfig,
    PullThroughCache,
    WorkerImageCache,
    benchmark_cost_table,
    simulate_evaluation,
)
from repro.evalcluster.master import EvaluationJob, Master
from repro.evalcluster.simulation import problem_images, sweep_workers


def test_pull_through_cache_downloads_once():
    shared = PullThroughCache(enabled=True)
    worker_a = WorkerImageCache("a", shared)
    worker_b = WorkerImageCache("b", shared)
    first = worker_a.pull("nginx:latest")
    second = worker_b.pull("nginx:latest")
    assert first.internet_mb > 0
    assert second.internet_mb == 0 and second.lan_mb > 0


def test_worker_local_cache_avoids_any_transfer():
    shared = PullThroughCache(enabled=True)
    worker = WorkerImageCache("a", shared)
    worker.pull("redis:7")
    plan = worker.pull("redis:7")
    assert plan.cached_locally and plan.internet_mb == 0 and plan.lan_mb == 0


def test_disabled_cache_always_hits_internet():
    shared = PullThroughCache(enabled=False)
    worker_a = WorkerImageCache("a", shared)
    worker_b = WorkerImageCache("b", shared)
    assert worker_a.pull("mysql:8.0").internet_mb > 0
    assert worker_b.pull("mysql:8.0").internet_mb > 0


def test_master_queue_lifecycle():
    master = Master()
    jobs = [EvaluationJob(f"j{i}", f"p{i}", ("nginx",), 10.0) for i in range(3)]
    master.submit(jobs)
    assert master.pending() == 3
    claimed = master.claim()
    assert claimed.job_id == "j0"
    master.report(claimed.job_id, "w1", finished_at=12.0, passed=True)
    assert master.completed() == 1
    assert not master.all_done()
    while master.claim():
        pass
    assert master.pending() == 0


def test_problem_images_extracted_from_reference(small_original_problems):
    problem = next(p for p in small_original_problems if p.category is Category.POD)
    images = problem_images(problem)
    assert images
    assert all(isinstance(i, str) and i for i in images)
    envoy_problem = next(p for p in small_original_problems if p.category is Category.ENVOY)
    assert "envoyproxy/envoy" in problem_images(envoy_problem)


def test_simulation_completes_all_jobs(small_dataset):
    config = ClusterSimulationConfig(num_workers=4, caching_enabled=True, worker_boot_seconds=10.0)
    result = simulate_evaluation(small_dataset, config)
    assert result.jobs == len(small_dataset)
    assert result.total_seconds > 0
    assert sum(result.per_worker_jobs.values()) == len(small_dataset)


def test_more_workers_is_faster(small_dataset):
    slow = simulate_evaluation(small_dataset, ClusterSimulationConfig(num_workers=1, caching_enabled=True))
    fast = simulate_evaluation(small_dataset, ClusterSimulationConfig(num_workers=16, caching_enabled=True))
    assert fast.total_seconds < slow.total_seconds


def test_caching_reduces_internet_traffic_and_time(small_dataset):
    cached = simulate_evaluation(small_dataset, ClusterSimulationConfig(num_workers=16, caching_enabled=True))
    uncached = simulate_evaluation(small_dataset, ClusterSimulationConfig(num_workers=16, caching_enabled=False))
    assert cached.internet_mb < uncached.internet_mb
    assert cached.total_seconds <= uncached.total_seconds


def test_simulation_is_deterministic(small_dataset):
    config = ClusterSimulationConfig(num_workers=8, caching_enabled=True)
    a = simulate_evaluation(small_dataset, config)
    b = simulate_evaluation(small_dataset, config)
    assert a.total_seconds == b.total_seconds


def test_sweep_structure(small_dataset):
    sweep = sweep_workers(small_dataset, worker_counts=(1, 4))
    assert set(sweep) == {False, True}
    assert set(sweep[True]) == {1, 4}
    assert sweep[True][4] < sweep[True][1]


def test_cost_table_matches_paper_magnitudes(small_dataset, full_dataset):
    table = benchmark_cost_table(full_dataset)
    assert table["inference:gpt-3.5"] == pytest.approx(0.60, abs=0.4)
    assert table["inference:llama-7b"] == pytest.approx(2.90, abs=1.5)
    assert table["evaluation:gcp-spot-x1"] == pytest.approx(0.71, abs=0.2)
    assert table["evaluation:gcp-standard-x64"] == pytest.approx(5.51, abs=1.0)
    assert table["total:min"] < table["total:max"]
    # The cheapest run is a couple of dollars, the priciest under ten.
    assert 0.5 < table["total:min"] < 3.0
    assert 5.0 < table["total:max"] < 12.0


def test_images_fallback_handles_list_items():
    """Regression: the line-scan fallback for malformed manifests missed
    YAML list entries (``- image: nginx``), undercounting pulled images."""

    from repro.evalcluster.simulation import _images_in_yaml
    from repro.yamlkit.parsing import YamlParseError, load_all_documents

    malformed = (
        "spec:\n"
        "  containers:\n"
        "  - image: nginx:1.25\n"
        "  - image: 'redis:7'\n"
        '  - image: "mysql:8.0"\n'
        "  - - image: busybox:1.36\n"
        "  ports: [80,  # malformed: unclosed flow sequence\n"
    )
    with pytest.raises(YamlParseError):
        load_all_documents(malformed)  # the fallback path is really taken
    assert _images_in_yaml(malformed) == [
        "nginx:1.25",
        "redis:7",
        "mysql:8.0",
        "busybox:1.36",
    ]


def test_images_fallback_still_reads_mapping_lines():
    from repro.evalcluster.simulation import _images_in_yaml
    from repro.yamlkit.parsing import YamlParseError, load_all_documents

    malformed = "image: nginx:latest\nports: [80,  # unclosed\n"
    with pytest.raises(YamlParseError):
        load_all_documents(malformed)
    assert _images_in_yaml(malformed) == ["nginx:latest"]
