"""Deterministic fault injection: specs, plans, the injector."""

from __future__ import annotations

import pytest

from repro.utils.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec, null_injector


class TestFaultSpec:
    def test_validates_its_fields(self):
        with pytest.raises(ValueError):
            FaultSpec(site="", kind="kill")
        with pytest.raises(ValueError):
            FaultSpec(site="worker.claim", kind="")
        with pytest.raises(ValueError):
            FaultSpec(site="worker.claim", kind="kill", after=0)
        with pytest.raises(ValueError):
            FaultSpec(site="worker.claim", kind="kill", times=-1)
        with pytest.raises(ValueError):
            FaultSpec(site="worker.claim", kind="delay", seconds=-0.1)

    def test_covers_window(self):
        spec = FaultSpec(site="s", kind="kill", after=3, times=2)
        assert [spec.covers(n) for n in range(1, 7)] == [False, False, True, True, False, False]

    def test_times_zero_is_forever(self):
        spec = FaultSpec(site="s", kind="freeze", after=2, times=0)
        assert not spec.covers(1)
        assert all(spec.covers(n) for n in range(2, 50))

    def test_documented_kinds_are_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(site="s", kind=kind).kind == kind


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(site="worker.claim", kind="kill", after=2),
                FaultSpec(site="remote.call", kind="delay", seconds=0.5, jitter=0.2, match="get"),
            ],
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([FaultSpec(site="s", kind="kill")])


class TestFaultInjector:
    def test_fires_on_the_nth_matching_occurrence(self):
        injector = FaultInjector(FaultPlan([FaultSpec(site="s", kind="kill", after=3)]))
        assert injector.fire("s") is None
        assert injector.fire("s") is None
        spec = injector.fire("s")
        assert spec is not None and spec.kind == "kill"
        assert injector.fire("s") is None  # times=1: fired and done

    def test_site_and_match_filter_occurrence_counting(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(site="worker.execute", kind="kill", match="poison")])
        )
        # Non-matching occurrences never advance the spec's counter.
        assert injector.fire("worker.execute", "healthy-1") is None
        assert injector.fire("worker.claim", "poison") is None  # wrong site
        assert injector.fire("worker.execute", "poison-problem") is not None

    def test_two_specs_keep_independent_schedules(self):
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(site="s", kind="kill", after=2, match="a"),
                    FaultSpec(site="s", kind="drop", after=1, match="b"),
                ]
            )
        )
        assert injector.fire("s", "a") is None
        assert injector.fire("s", "b").kind == "drop"
        assert injector.fire("s", "a").kind == "kill"

    def test_first_spec_in_plan_order_wins(self):
        injector = FaultInjector(
            FaultPlan(
                [FaultSpec(site="s", kind="kill"), FaultSpec(site="s", kind="drop")]
            )
        )
        assert injector.fire("s").kind == "kill"

    def test_fired_events_are_recorded_and_logged(self):
        logged = []
        injector = FaultInjector(
            FaultPlan([FaultSpec(site="s", kind="drop", after=2)]), log=logged.append
        )
        injector.fire("s", "first")
        injector.fire("s", "second")
        assert injector.fired == [
            {"event": "fault", "site": "s", "kind": "drop", "detail": "second", "occurrence": 2}
        ]
        assert logged == injector.fired

    def test_log_exceptions_never_mask_the_fault(self):
        def bad_log(event):
            raise RuntimeError("event stream is down")

        injector = FaultInjector(FaultPlan([FaultSpec(site="s", kind="kill")]), log=bad_log)
        assert injector.fire("s").kind == "kill"

    def test_delay_seconds_is_deterministic(self):
        spec = FaultSpec(site="s", kind="delay", seconds=1.0, jitter=0.5)
        first = FaultInjector(FaultPlan([spec], seed=3))
        second = FaultInjector(FaultPlan([spec], seed=3))
        assert first.delay_seconds(spec, "ctx") == second.delay_seconds(spec, "ctx")
        assert 0.5 <= first.delay_seconds(spec, "ctx") <= 1.5
        other_seed = FaultInjector(FaultPlan([spec], seed=4))
        assert other_seed.delay_seconds(spec, "ctx") != first.delay_seconds(spec, "ctx")

    def test_sleep_if_delay_ignores_non_delay_kinds(self):
        injector = null_injector()
        # Must return immediately: a kill spec charges no sleep here.
        injector.sleep_if_delay(FaultSpec(site="s", kind="kill", seconds=30.0))
        injector.sleep_if_delay(None)

    def test_null_injector_never_fires(self):
        injector = null_injector()
        assert not injector
        assert all(injector.fire("s", str(n)) is None for n in range(10))
        assert injector.fired == []
