"""Tests for unit-test program execution against the simulated substrate."""

from __future__ import annotations

from repro.testexec import (
    ApplyAnswer,
    ApplyManifest,
    AssertEnvoyClusterLb,
    AssertEnvoyListenerPort,
    AssertEnvoyRoute,
    AssertJsonPath,
    AssertServiceReachable,
    CreateNamespace,
    UnitTestProgram,
    WaitFor,
    execute_unit_test,
)

DEPLOYMENT_ANSWER = """
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
  namespace: dev
spec:
  replicas: 2
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: web
        image: nginx:latest
        ports:
        - containerPort: 80
"""

K8S_PROGRAM = UnitTestProgram(
    steps=(
        CreateNamespace("dev"),
        ApplyAnswer(),
        WaitFor("Deployment", "available", name="web", namespace="dev"),
        AssertJsonPath("Deployment", "{.spec.replicas}", expected="2", name="web", namespace="dev"),
    ),
    target="kubernetes",
)


def test_correct_answer_passes():
    result = execute_unit_test(K8S_PROGRAM, DEPLOYMENT_ANSWER)
    assert result.passed and result.score == 1.0
    assert result.steps_run == len(K8S_PROGRAM.steps)


def test_empty_answer_fails_at_apply():
    result = execute_unit_test(K8S_PROGRAM, "")
    assert not result.passed
    assert result.failed_step == "ApplyAnswer"


def test_wrong_field_value_fails_assertion():
    wrong = DEPLOYMENT_ANSWER.replace("replicas: 2", "replicas: 1")
    result = execute_unit_test(K8S_PROGRAM, wrong)
    assert not result.passed
    assert result.failed_step in {"AssertJsonPath", "WaitFor"}


def test_invalid_yaml_fails_gracefully():
    result = execute_unit_test(K8S_PROGRAM, "kind: Deployment\n  bad_indent: [")
    assert not result.passed
    assert result.score == 0.0


def test_wrong_namespace_fails():
    wrong = DEPLOYMENT_ANSWER.replace("namespace: dev", "namespace: default")
    result = execute_unit_test(K8S_PROGRAM, wrong)
    assert not result.passed


def test_setup_manifest_and_service_reachability():
    program = UnitTestProgram(
        steps=(
            CreateNamespace("dev"),
            ApplyManifest(DEPLOYMENT_ANSWER),
            ApplyAnswer(),
            AssertServiceReachable("web-svc", namespace="dev", port=80),
        )
    )
    service_answer = """
apiVersion: v1
kind: Service
metadata:
  name: web-svc
  namespace: dev
spec:
  selector:
    app: web
  ports:
  - port: 80
    targetPort: 80
"""
    assert execute_unit_test(program, service_answer).passed
    wrong_selector = service_answer.replace("app: web", "app: other")
    assert not execute_unit_test(program, wrong_selector).passed


def test_envoy_program_pass_and_fail():
    program = UnitTestProgram(
        steps=(
            ApplyAnswer(),
            AssertEnvoyListenerPort(10000),
            AssertEnvoyRoute(10000, "backend"),
            AssertEnvoyClusterLb("backend", "LEAST_REQUEST"),
        ),
        target="envoy",
    )
    answer = """
static_resources:
  listeners:
  - name: l0
    address:
      socket_address: {address: 0.0.0.0, port_value: 10000}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          route_config:
            virtual_hosts:
            - name: vh
              domains: ["*"]
              routes:
              - match: {prefix: /}
                route: {cluster: backend}
  clusters:
  - name: backend
    lb_policy: LEAST_REQUEST
    load_assignment:
      endpoints:
      - lb_endpoints:
        - endpoint:
            address: {socket_address: {address: 127.0.0.1, port_value: 8080}}
"""
    assert execute_unit_test(program, answer).passed
    wrong_policy = answer.replace("LEAST_REQUEST", "RANDOM")
    result = execute_unit_test(program, wrong_policy)
    assert not result.passed and result.failed_step == "AssertEnvoyClusterLb"


def test_envoy_program_rejects_kubernetes_answer():
    program = UnitTestProgram(steps=(ApplyAnswer(), AssertEnvoyListenerPort(80)), target="envoy")
    result = execute_unit_test(program, "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n")
    assert not result.passed


def test_kubernetes_program_rejects_envoy_assertions():
    program = UnitTestProgram(steps=(AssertEnvoyListenerPort(80),), target="kubernetes")
    result = execute_unit_test(program, "apiVersion: v1\nkind: Pod\nmetadata: {name: x}\nspec: {containers: [{name: a, image: nginx}]}\n")
    assert not result.passed
    assert "envoy" in result.message.lower()
