"""Table 6 — Unit-test pass counts with 0-3 few-shot examples.

Paper claim: few-shot prompting does not yield significant improvements on
this task for any of the three evaluated models.
"""

from __future__ import annotations

from benchmarks.common import few_shot_pass_counts
from repro.analysis.paper_reference import PAPER_TABLE6
from repro.analysis.tables import table6_few_shot


def test_table6_few_shot_prompting(benchmark):
    evaluations_by_shots = few_shot_pass_counts()
    table = benchmark.pedantic(table6_few_shot, args=(evaluations_by_shots,), rounds=1, iterations=1)

    print("\nTable 6 (measured, paper in parentheses):")
    for model, row in table.items():
        paper = PAPER_TABLE6.get(model, (None,) * 4)
        cells = "   ".join(f"{shots}-shot {row[shots]} ({paper[shots]})" for shots in sorted(row))
        print(f"  {model:<22} {cells}")

    for model, row in table.items():
        zero_shot = row[0]
        for shots in (1, 2, 3):
            delta = row[shots] - zero_shot
            # No significant gain (or loss): within ~20% of the zero-shot count.
            assert abs(delta) <= max(5, int(0.25 * max(zero_shot, 1))), (model, shots, delta)

    # The relative ordering of the models is unchanged by few-shot prompting.
    for shots in (0, 1, 2, 3):
        assert table["gpt-3.5"][shots] > table["llama-2-70b-chat"][shots] > table["llama-2-7b-chat"][shots] * 0.9
