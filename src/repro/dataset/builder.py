"""Dataset builder: turn catalog drafts into the full 1011-problem corpus.

``build_original_problems`` generates the 337 original problems with the
category mix of Table 2; ``build_dataset`` additionally applies the
practical data augmentation of §2.2 (simplified and translated variants)
to produce the full 1011-problem dataset.
"""

from __future__ import annotations

from functools import lru_cache

from repro.dataset.augmentation import augment_problem_set
from repro.dataset.catalog import CATEGORY_GENERATORS
from repro.dataset.catalog.common import ProblemDraft
from repro.dataset.problem import Problem, ProblemSet
from repro.dataset.schema import Category, ORIGINAL_CATEGORY_COUNTS, Variant
from repro.testexec.steps import UnitTestProgram
from repro.utils.rng import DeterministicRNG

__all__ = ["build_dataset", "build_original_problems", "DEFAULT_SEED"]

DEFAULT_SEED = 20240214


def _difficulty_for(draft: ProblemDraft, solution_lines: int, category: Category) -> float:
    """Map a draft to a difficulty scalar in [0, 1].

    Difficulty grows with solution length (the dominant factor identified in
    Figure 6), is boosted for Envoy (whose configurations are the longest and
    hardest) and slightly for Istio, and templates can add their own offset.
    """

    if solution_lines < 15:
        base = 0.25
    elif solution_lines < 30:
        base = 0.5
    else:
        base = 0.75
    if category is Category.ENVOY:
        base += 0.2
    elif category is Category.ISTIO:
        base += 0.05
    return float(min(1.0, base + draft.extra_difficulty))


def _finalise(draft: ProblemDraft, category: Category, ordinal: int) -> Problem:
    """Convert a draft into an original-variant Problem."""

    base_id = f"{category.value}-{ordinal:04d}"
    unit_test = UnitTestProgram(steps=tuple(draft.steps), target=draft.target, nodes=draft.nodes)
    provisional = Problem(
        problem_id=f"{base_id}-original",
        base_id=base_id,
        category=category,
        variant=Variant.ORIGINAL,
        question=draft.question,
        yaml_context=draft.yaml_context,
        reference_yaml=draft.reference_yaml,
        unit_test=unit_test,
        difficulty=0.5,
        source=draft.source,
        metadata={"slug": draft.slug, "primary_kind": draft.primary_kind, **draft.metadata},
    )
    difficulty = _difficulty_for(draft, provisional.solution_lines(), category)
    return Problem(
        problem_id=provisional.problem_id,
        base_id=provisional.base_id,
        category=provisional.category,
        variant=provisional.variant,
        question=provisional.question,
        yaml_context=provisional.yaml_context,
        reference_yaml=provisional.reference_yaml,
        unit_test=provisional.unit_test,
        difficulty=difficulty,
        source=provisional.source,
        metadata=provisional.metadata,
    )


def build_original_problems(
    seed: int = DEFAULT_SEED,
    category_counts: dict[Category, int] | None = None,
) -> ProblemSet:
    """Generate the original (English, non-augmented) problem set.

    ``category_counts`` defaults to the Table 2 mix (337 problems); pass a
    smaller mapping to build reduced corpora for fast tests.
    """

    counts = dict(ORIGINAL_CATEGORY_COUNTS if category_counts is None else category_counts)
    rng = DeterministicRNG(seed)
    problems: list[Problem] = []
    ordinal = 0
    for category in Category:
        count = counts.get(category, 0)
        if count <= 0:
            continue
        drafts = CATEGORY_GENERATORS[category](rng.child(category.value), count)
        if len(drafts) != count:
            raise RuntimeError(f"generator for {category} produced {len(drafts)} drafts, expected {count}")
        for draft in drafts:
            problems.append(_finalise(draft, category, ordinal))
            ordinal += 1
    return ProblemSet(problems)


def build_dataset(
    seed: int = DEFAULT_SEED,
    category_counts: dict[Category, int] | None = None,
    augment: bool = True,
) -> ProblemSet:
    """Build the full dataset (originals plus simplified/translated variants)."""

    originals = build_original_problems(seed=seed, category_counts=category_counts)
    if not augment:
        return originals
    return augment_problem_set(originals)


@lru_cache(maxsize=4)
def cached_dataset(seed: int = DEFAULT_SEED) -> ProblemSet:
    """A memoised full dataset, shared by benchmarks that reuse the corpus."""

    return build_dataset(seed=seed)
