"""A distributed evaluation fleet on one machine: store, workers, leaderboard.

This is the paper's master/worker evaluation cluster with a real wire in
the middle.  One process serves the job store over a socket, three
worker *processes* claim score jobs from it (exactly what ``python -m
repro.evalcluster.fleet worker --connect host:port`` does on another
machine), and the leaderboard run drives the unmodified
:class:`~repro.evalcluster.master.Master` protocol against the remote
store — leases, heartbeats and re-enqueue-once included.

The run shares a persistent score cache, so a second leaderboard refresh
ships only unseen ``(reference, answer)`` pairs to the fleet, and the
leaderboard footer shows both the cache's hit summary and the fleet's
queue/heartbeat snapshot.  The records are bit-identical to a serial
in-process run — the wire cannot move a score.

Run with::

    python examples/fleet_eval.py
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

from repro import build_dataset
from repro.core import BenchmarkConfig, CloudEvalBenchmark
from repro.core.report import format_leaderboard
from repro.dataset.schema import Variant
from repro.evalcluster.fleet import STOP_KEY, FleetExecutor, RemoteStore, StoreServer, run_worker

MODELS = ["gpt-4", "gpt-3.5", "llama-2-70b-chat"]
PROBLEM_BUDGET = 40
WORKERS = 3


def start_fleet() -> tuple[StoreServer, list[multiprocessing.Process]]:
    """Serve the store on an ephemeral port and start three workers.

    ``run_worker`` is the same entry the CLI uses — on a real cluster
    these processes would be ``python -m repro.evalcluster.fleet worker
    --connect host:port`` on other machines.
    """

    server = StoreServer().start()
    workers = [
        multiprocessing.Process(
            target=run_worker,
            args=(server.address,),
            kwargs={"worker_id": f"fleet-worker-{index}", "claim_timeout": 0.2},
        )
        for index in range(WORKERS)
    ]
    for worker in workers:
        worker.start()
    return server, workers


def stop_fleet(server: StoreServer, workers: list[multiprocessing.Process]) -> None:
    """Raise the stop flag, join the workers, close the store."""

    control = RemoteStore(server.address)
    control.set(STOP_KEY, True)
    control.close()
    for worker in workers:
        worker.join(timeout=10)
        if worker.is_alive():  # pragma: no cover - defensive shutdown
            worker.terminate()
    server.close()


def main() -> None:
    dataset = build_dataset()
    problems = list(dataset.by_variant(Variant.ORIGINAL))[:PROBLEM_BUDGET]

    server, workers = start_fleet()
    print(f"store serving on {server.host}:{server.port}, {WORKERS} worker processes attached\n")

    with tempfile.TemporaryDirectory() as scratch:
        cache_path = Path(scratch) / "score_cache.jsonl"
        executor = FleetExecutor(address=server.address, lease_seconds=30.0)
        try:
            benchmark = CloudEvalBenchmark(
                dataset,
                BenchmarkConfig(
                    executor=executor,  # attach the leaderboard to the fleet
                    shards=2,
                    batch_size=8,
                    score_cache=str(cache_path),
                ),
            )
            start = time.perf_counter()
            result = benchmark.evaluate_models(MODELS, problems=problems)
            elapsed = time.perf_counter() - start

            # The invariant the fleet is sold on: the wire moves work,
            # never scores.
            serial = CloudEvalBenchmark(dataset, BenchmarkConfig()).evaluate_model(
                MODELS[0], problems=problems
            )
            assert result.evaluations[MODELS[0]].records == serial.records

            print(
                format_leaderboard(
                    result,
                    title=f"Fleet leaderboard ({elapsed:.1f}s wall clock)",
                    score_cache=benchmark.score_cache(),
                    fleet_stats=executor.stats(),
                )
            )
        finally:
            executor.close()
            stop_fleet(server, workers)


if __name__ == "__main__":
    main()
