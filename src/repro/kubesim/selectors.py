"""Label selector matching.

Implements the two selector forms used by Kubernetes objects:

* equality-based ``matchLabels`` maps,
* set-based ``matchExpressions`` with ``In``, ``NotIn``, ``Exists`` and
  ``DoesNotExist`` operators,

plus the shorthand used by Services whose ``spec.selector`` is a bare
label map, and the ``-l key=value`` string syntax used by ``kubectl get``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.kubesim.errors import ValidationError

__all__ = ["matches_selector", "matches_label_map", "parse_kubectl_selector"]


def matches_label_map(labels: Mapping[str, str], selector: Mapping[str, Any]) -> bool:
    """Equality-based matching: every selector entry must be present."""

    return all(str(labels.get(str(k))) == str(v) for k, v in selector.items())


def _matches_expression(labels: Mapping[str, str], expression: Mapping[str, Any]) -> bool:
    key = str(expression.get("key", ""))
    operator = str(expression.get("operator", ""))
    values = [str(v) for v in expression.get("values", []) or []]
    present = key in labels
    if operator == "In":
        return present and str(labels[key]) in values
    if operator == "NotIn":
        return not present or str(labels[key]) not in values
    if operator == "Exists":
        return present
    if operator == "DoesNotExist":
        return not present
    raise ValidationError(f"unknown selector operator {operator!r}", field="matchExpressions")


def matches_selector(labels: Mapping[str, str] | None, selector: Mapping[str, Any] | None) -> bool:
    """Match labels against a LabelSelector (or bare label map).

    An empty or missing selector matches nothing for workload controllers
    (the API server rejects those manifests before this is reached), but we
    return False instead of raising so list operations stay total.
    """

    labels = labels or {}
    if not selector:
        return False
    # Bare label map (Service.spec.selector style).
    if "matchLabels" not in selector and "matchExpressions" not in selector:
        return matches_label_map(labels, selector)
    match_labels = selector.get("matchLabels") or {}
    if not matches_label_map(labels, match_labels):
        return False
    for expression in selector.get("matchExpressions") or []:
        if not isinstance(expression, Mapping) or not _matches_expression(labels, expression):
            return False
    return True


def parse_kubectl_selector(selector: str) -> dict[str, str]:
    """Parse the ``key=value,key2=value2`` syntax of ``kubectl -l``."""

    result: dict[str, str] = {}
    for part in selector.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(f"invalid label selector segment {part!r}")
        key, _, value = part.partition("=")
        result[key.strip()] = value.strip().strip("'\"")
    return result
