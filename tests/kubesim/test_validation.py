"""Tests for per-kind manifest validation."""

from __future__ import annotations

import pytest

from repro.kubesim.errors import ValidationError
from repro.kubesim.resources import Resource
from repro.kubesim.validation import validate_resource


def _validate(manifest):
    validate_resource(Resource.from_manifest(manifest))


def _pod(**overrides):
    manifest = {
        "apiVersion": "v1",
        "kind": "Pod",
        "metadata": {"name": "web"},
        "spec": {"containers": [{"name": "c", "image": "nginx:latest", "ports": [{"containerPort": 80}]}]},
    }
    manifest.update(overrides)
    return manifest


def test_valid_pod_passes():
    _validate(_pod())


def test_wrong_api_version_rejected():
    with pytest.raises(ValidationError, match="apiVersion"):
        _validate(_pod(apiVersion="v1beta1"))


def test_invalid_dns_name_rejected():
    bad = _pod()
    bad["metadata"]["name"] = "Invalid_Name!"
    with pytest.raises(ValidationError, match="DNS-1123"):
        _validate(bad)


def test_pod_without_containers_rejected():
    bad = _pod()
    bad["spec"]["containers"] = []
    with pytest.raises(ValidationError, match="container"):
        _validate(bad)


def test_container_port_out_of_range_rejected():
    bad = _pod()
    bad["spec"]["containers"][0]["ports"][0]["containerPort"] = 99999
    with pytest.raises(ValidationError, match="containerPort"):
        _validate(bad)


def test_unknown_container_field_rejected():
    bad = _pod()
    bad["spec"]["containers"][0]["imagePullSecret"] = "oops"
    with pytest.raises(ValidationError, match="unknown container fields"):
        _validate(bad)


def test_env_entry_requires_value_or_value_from():
    bad = _pod()
    bad["spec"]["containers"][0]["env"] = [{"name": "X"}]
    with pytest.raises(ValidationError, match="value"):
        _validate(bad)


def test_invalid_resource_quantity_rejected():
    bad = _pod()
    bad["spec"]["containers"][0]["resources"] = {"limits": {"cpu": "lots"}}
    with pytest.raises(ValidationError, match="quantity"):
        _validate(bad)


def test_volume_mount_must_reference_declared_volume():
    bad = _pod()
    bad["spec"]["volumes"] = [{"name": "data", "emptyDir": {}}]
    bad["spec"]["containers"][0]["volumeMounts"] = [{"name": "other", "mountPath": "/x"}]
    with pytest.raises(ValidationError, match="undeclared volume"):
        _validate(bad)


def _deployment(selector_app="web", template_app="web", replicas=2):
    return {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "metadata": {"name": "dep"},
        "spec": {
            "replicas": replicas,
            "selector": {"matchLabels": {"app": selector_app}},
            "template": {
                "metadata": {"labels": {"app": template_app}},
                "spec": {"containers": [{"name": "c", "image": "nginx"}]},
            },
        },
    }


def test_valid_deployment_passes():
    _validate(_deployment())


def test_deployment_selector_mismatch_rejected():
    with pytest.raises(ValidationError, match="selector"):
        _validate(_deployment(selector_app="a", template_app="b"))


def test_deployment_negative_replicas_rejected():
    with pytest.raises(ValidationError, match="replicas"):
        _validate(_deployment(replicas=-1))


def test_statefulset_requires_service_name():
    manifest = _deployment()
    manifest["kind"] = "StatefulSet"
    with pytest.raises(ValidationError, match="serviceName"):
        _validate(manifest)


def test_job_requires_valid_restart_policy():
    manifest = {
        "apiVersion": "batch/v1",
        "kind": "Job",
        "metadata": {"name": "j"},
        "spec": {"template": {"spec": {"restartPolicy": "Always", "containers": [{"name": "c", "image": "busybox"}]}}},
    }
    with pytest.raises(ValidationError, match="restartPolicy"):
        _validate(manifest)


def test_cronjob_requires_five_field_schedule():
    manifest = {
        "apiVersion": "batch/v1",
        "kind": "CronJob",
        "metadata": {"name": "cj"},
        "spec": {
            "schedule": "hourly",
            "jobTemplate": {"spec": {"template": {"spec": {"containers": [{"name": "c", "image": "busybox"}]}}}},
        },
    }
    with pytest.raises(ValidationError, match="cron"):
        _validate(manifest)


def _service(**port_overrides):
    port = {"port": 80, "targetPort": 80}
    port.update(port_overrides)
    return {
        "apiVersion": "v1",
        "kind": "Service",
        "metadata": {"name": "svc"},
        "spec": {"selector": {"app": "web"}, "ports": [port]},
    }


def test_valid_service_passes():
    _validate(_service())


def test_service_requires_ports():
    manifest = _service()
    manifest["spec"]["ports"] = []
    with pytest.raises(ValidationError, match="port"):
        _validate(manifest)


def test_service_node_port_range_enforced():
    with pytest.raises(ValidationError, match="nodePort"):
        _validate(_service(nodePort=20000))


def test_service_unknown_type_rejected():
    manifest = _service()
    manifest["spec"]["type"] = "Balanced"
    with pytest.raises(ValidationError, match="type"):
        _validate(manifest)


def test_legacy_ingress_backend_rejected():
    manifest = {
        "apiVersion": "networking.k8s.io/v1",
        "kind": "Ingress",
        "metadata": {"name": "ing"},
        "spec": {
            "rules": [
                {"http": {"paths": [{"path": "/", "backend": {"serviceName": "svc", "servicePort": 80}}]}}
            ]
        },
    }
    with pytest.raises(ValidationError, match="backend.service"):
        _validate(manifest)


def test_ingress_requires_path_type():
    manifest = {
        "apiVersion": "networking.k8s.io/v1",
        "kind": "Ingress",
        "metadata": {"name": "ing"},
        "spec": {
            "rules": [
                {"http": {"paths": [{"path": "/", "backend": {"service": {"name": "svc", "port": {"number": 80}}}}]}}
            ]
        },
    }
    with pytest.raises(ValidationError, match="pathType"):
        _validate(manifest)


def test_valid_modern_ingress_passes():
    manifest = {
        "apiVersion": "networking.k8s.io/v1",
        "kind": "Ingress",
        "metadata": {"name": "ing"},
        "spec": {
            "rules": [
                {
                    "http": {
                        "paths": [
                            {
                                "path": "/",
                                "pathType": "Prefix",
                                "backend": {"service": {"name": "svc", "port": {"number": 80}}},
                            }
                        ]
                    }
                }
            ]
        },
    }
    _validate(manifest)


def test_rolebinding_requires_api_group_and_subjects():
    manifest = {
        "apiVersion": "rbac.authorization.k8s.io/v1",
        "kind": "RoleBinding",
        "metadata": {"name": "rb"},
        "roleRef": {"kind": "ClusterRole", "name": "reader", "apiGroup": "rbac.authorization.k8s.io"},
        "subjects": [{"kind": "User", "name": "dave"}],
    }
    with pytest.raises(ValidationError, match="apiGroup"):
        _validate(manifest)
    manifest["subjects"][0]["apiGroup"] = "rbac.authorization.k8s.io"
    _validate(manifest)


def test_role_rejects_unknown_verbs():
    manifest = {
        "apiVersion": "rbac.authorization.k8s.io/v1",
        "kind": "Role",
        "metadata": {"name": "r"},
        "rules": [{"apiGroups": [""], "resources": ["pods"], "verbs": ["frobnicate"]}],
    }
    with pytest.raises(ValidationError, match="verb"):
        _validate(manifest)


def test_pvc_requires_storage_request():
    manifest = {
        "apiVersion": "v1",
        "kind": "PersistentVolumeClaim",
        "metadata": {"name": "claim"},
        "spec": {"accessModes": ["ReadWriteOnce"], "resources": {"requests": {}}},
    }
    with pytest.raises(ValidationError, match="storage"):
        _validate(manifest)


def test_hpa_replica_bounds():
    manifest = {
        "apiVersion": "autoscaling/v2",
        "kind": "HorizontalPodAutoscaler",
        "metadata": {"name": "hpa"},
        "spec": {"scaleTargetRef": {"kind": "Deployment", "name": "d"}, "minReplicas": 5, "maxReplicas": 2},
    }
    with pytest.raises(ValidationError, match="minReplicas"):
        _validate(manifest)


def test_limitrange_requires_typed_limits():
    manifest = {
        "apiVersion": "v1",
        "kind": "LimitRange",
        "metadata": {"name": "lr"},
        "spec": {"limits": [{"defaultRequest": {"cpu": "100m"}}]},
    }
    with pytest.raises(ValidationError, match="type"):
        _validate(manifest)
