"""Category and variant taxonomy of the dataset.

The categories follow Table 2 of the paper: five Kubernetes sub-categories
(pod, daemonset, service, job, deployment), a catch-all "others" bucket for
remaining Kubernetes kinds, plus Envoy and Istio.  Variants follow §2.2:
every original problem has a simplified and a translated sibling.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Category", "Variant", "APPLICATION_OF_CATEGORY", "ORIGINAL_CATEGORY_COUNTS"]


class Category(str, Enum):
    """Problem category (Table 2 columns)."""

    POD = "pod"
    DAEMONSET = "daemonset"
    SERVICE = "service"
    JOB = "job"
    DEPLOYMENT = "deployment"
    OTHERS = "others"
    ENVOY = "envoy"
    ISTIO = "istio"

    @property
    def application(self) -> str:
        """The application this category belongs to (Figure 6 grouping)."""

        return APPLICATION_OF_CATEGORY[self]


class Variant(str, Enum):
    """Question variant produced by practical data augmentation (§2.2)."""

    ORIGINAL = "original"
    SIMPLIFIED = "simplified"
    TRANSLATED = "translated"


APPLICATION_OF_CATEGORY: dict[Category, str] = {
    Category.POD: "kubernetes",
    Category.DAEMONSET: "kubernetes",
    Category.SERVICE: "kubernetes",
    Category.JOB: "kubernetes",
    Category.DEPLOYMENT: "kubernetes",
    Category.OTHERS: "kubernetes",
    Category.ENVOY: "envoy",
    Category.ISTIO: "istio",
}

# Original-problem counts per category, matching Table 2 of the paper.
ORIGINAL_CATEGORY_COUNTS: dict[Category, int] = {
    Category.POD: 48,
    Category.DAEMONSET: 55,
    Category.SERVICE: 20,
    Category.JOB: 19,
    Category.DEPLOYMENT: 19,
    Category.OTHERS: 122,
    Category.ENVOY: 41,
    Category.ISTIO: 13,
}
